/**
 * @file
 * Live status surfaces: machine-readable `--status-file` documents and
 * one-line TTY progress rendering for the CLIs.
 *
 * A status file is a single `bighouse-status-v1` JSON document rewritten
 * atomically (write-then-rename, like checkpoints and manifests) on
 * every progress tick — a watcher process always reads a complete,
 * parseable document, never a torn write. The `kind` field selects the
 * payload shape: "serial" (one simulation's metric state), "parallel"
 * (per-slave supervision state), or "campaign" (per-point lifecycle).
 * The terminal rewrite sets `"terminal": true`, so `jq .terminal` is the
 * liveness probe CI uses.
 */

#ifndef BIGHOUSE_OBS_STATUS_HH
#define BIGHOUSE_OBS_STATUS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.hh"
#include "config/json.hh"
#include "parallel/parallel.hh"
#include "stats/metric.hh"

namespace bighouse {

/**
 * Write `text` to `path` atomically: staged to `path + ".tmp"`, then
 * renamed over the target. fatal() on I/O errors.
 */
void writeFileAtomic(const std::string& path, std::string_view text);

/** Serialize (2-space indent, trailing newline) and write atomically. */
void writeStatusFile(const std::string& path, const JsonValue& status);

/**
 * Status document for a serial run in flight (or finished).
 * @param termination terminationReasonName(...) once decided, nullptr
 *        while the run is still going (serialized as JSON null).
 */
JsonValue serialStatusJson(const std::vector<MetricEstimate>& estimates,
                           std::uint64_t events, double elapsedSeconds,
                           bool terminal, bool converged,
                           const char* termination);

/**
 * Status document for a parallel run. Slave states render as the
 * supervision status name ("running", "ok", "failed", "timed-out",
 * "straggler"); on the terminal snapshot of a converged run, Ok slaves
 * render as "converged".
 */
JsonValue parallelStatusJson(const ParallelProgressSnapshot& snapshot,
                             bool terminal);

/**
 * Status document for a campaign. Point states: "cache-hit", "ran",
 * "failed", "running", "pending".
 */
JsonValue campaignStatusJson(const std::vector<SweepPoint>& points,
                             const CampaignReport& report, bool terminal);

/** One-line TTY progress: worst metric's accepted/required and events. */
std::string serialProgressLine(
    const std::vector<MetricEstimate>& estimates, std::uint64_t events);

/** One-line TTY progress for a parallel snapshot. */
std::string parallelProgressLine(const ParallelProgressSnapshot& snapshot);

/** One-line TTY progress for a campaign report. */
std::string campaignProgressLine(const CampaignReport& report);

} // namespace bighouse

#endif // BIGHOUSE_OBS_STATUS_HH
