#include "obs/status.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace bighouse {

void
writeFileAtomic(const std::string& path, std::string_view text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            fatal("cannot open ", tmp, " for writing");
        out.write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        if (!out)
            fatal("write error on ", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename ", tmp, " to ", path);
}

void
writeStatusFile(const std::string& path, const JsonValue& status)
{
    writeFileAtomic(path, status.dump(2) + "\n");
}

namespace {

JsonValue::Object
statusRoot(const char* kind, bool terminal)
{
    JsonValue::Object root;
    root.emplace("format", JsonValue(std::string("bighouse-status-v1")));
    root.emplace("kind", JsonValue(std::string(kind)));
    root.emplace("terminal", JsonValue(terminal));
    return root;
}

} // namespace

JsonValue
serialStatusJson(const std::vector<MetricEstimate>& estimates,
                 std::uint64_t events, double elapsedSeconds,
                 bool terminal, bool converged, const char* termination)
{
    JsonValue::Object metrics;
    for (const MetricEstimate& estimate : estimates) {
        JsonValue::Object metric;
        metric.emplace("phase",
                       JsonValue(std::string(phaseName(estimate.phase))));
        metric.emplace("converged", JsonValue(estimate.converged));
        metric.emplace(
            "accepted",
            JsonValue(static_cast<double>(estimate.accepted)));
        metric.emplace(
            "required",
            JsonValue(static_cast<double>(estimate.required)));
        metric.emplace("mean", JsonValue(estimate.mean));
        metric.emplace("relativeHalfWidth",
                       JsonValue(estimate.relativeHalfWidth));
        metrics.emplace(estimate.name, JsonValue(std::move(metric)));
    }
    JsonValue::Object root = statusRoot("serial", terminal);
    root.emplace("events", JsonValue(static_cast<double>(events)));
    root.emplace("elapsedSeconds", JsonValue(elapsedSeconds));
    root.emplace("converged", JsonValue(converged));
    root.emplace("termination", termination != nullptr
                                    ? JsonValue(std::string(termination))
                                    : JsonValue(nullptr));
    root.emplace("metrics", JsonValue(std::move(metrics)));
    return JsonValue(std::move(root));
}

JsonValue
parallelStatusJson(const ParallelProgressSnapshot& snapshot, bool terminal)
{
    JsonValue::Array slaves;
    slaves.reserve(snapshot.slaves.size());
    for (std::size_t s = 0; s < snapshot.slaves.size(); ++s) {
        const ParallelSlaveProgress& slave = snapshot.slaves[s];
        const char* state = slaveStatusName(slave.status);
        if (terminal && snapshot.converged
            && slave.status == SlaveStatus::Ok)
            state = "converged";
        JsonValue::Object obj;
        obj.emplace("slave", JsonValue(static_cast<double>(s)));
        obj.emplace("state", JsonValue(std::string(state)));
        obj.emplace("abandoned", JsonValue(slave.abandoned));
        obj.emplace("events",
                    JsonValue(static_cast<double>(slave.events)));
        obj.emplace("secondsSinceBeat",
                    JsonValue(slave.secondsSinceBeat));
        slaves.emplace_back(std::move(obj));
    }
    JsonValue::Object root = statusRoot("parallel", terminal);
    root.emplace("phase", JsonValue(snapshot.phase));
    root.emplace("converged", JsonValue(snapshot.converged));
    root.emplace("healthySlaves", JsonValue(static_cast<double>(
                                      snapshot.healthySlaves)));
    root.emplace("totalEvents", JsonValue(static_cast<double>(
                                    snapshot.totalEvents)));
    root.emplace("elapsedSeconds", JsonValue(snapshot.elapsedSeconds));
    root.emplace("slaves", JsonValue(std::move(slaves)));
    return JsonValue(std::move(root));
}

JsonValue
campaignStatusJson(const std::vector<SweepPoint>& points,
                   const CampaignReport& report, bool terminal)
{
    JsonValue::Array pointStates;
    pointStates.reserve(report.outcomes.size());
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const char* state = "pending";
        switch (report.outcomes[i].status) {
          case PointStatus::Pending: state = "pending"; break;
          case PointStatus::Running: state = "running"; break;
          case PointStatus::Cached: state = "cache-hit"; break;
          case PointStatus::Ran: state = "ran"; break;
          case PointStatus::Failed: state = "failed"; break;
        }
        JsonValue::Object obj;
        obj.emplace("point", JsonValue(static_cast<double>(i)));
        obj.emplace("state", JsonValue(std::string(state)));
        if (i < points.size()) {
            JsonValue::Object axes;
            for (const auto& [path, value] : points[i].axes)
                axes.emplace(path, JsonValue(value));
            obj.emplace("axes", JsonValue(std::move(axes)));
        }
        pointStates.emplace_back(std::move(obj));
    }
    JsonValue::Object root = statusRoot("campaign", terminal);
    root.emplace("cached",
                 JsonValue(static_cast<double>(report.cached)));
    root.emplace("ran", JsonValue(static_cast<double>(report.ran)));
    root.emplace("failed",
                 JsonValue(static_cast<double>(report.failed)));
    root.emplace("pending",
                 JsonValue(static_cast<double>(report.pending)));
    root.emplace("points", JsonValue(std::move(pointStates)));
    return JsonValue(std::move(root));
}

std::string
serialProgressLine(const std::vector<MetricEstimate>& estimates,
                   std::uint64_t events)
{
    std::size_t converged = 0;
    const MetricEstimate* worst = nullptr;
    for (const MetricEstimate& estimate : estimates) {
        if (estimate.converged) {
            ++converged;
            continue;
        }
        const std::uint64_t deficit =
            estimate.required > estimate.accepted
                ? estimate.required - estimate.accepted
                : 0;
        const std::uint64_t worstDeficit =
            worst != nullptr && worst->required > worst->accepted
                ? worst->required - worst->accepted
                : 0;
        if (worst == nullptr || deficit > worstDeficit)
            worst = &estimate;
    }
    std::ostringstream line;
    line << "events " << events << " | " << converged << "/"
         << estimates.size() << " metrics converged";
    if (worst != nullptr) {
        line << " | worst " << worst->name << " " << worst->accepted
             << "/" << worst->required;
    }
    return line.str();
}

std::string
parallelProgressLine(const ParallelProgressSnapshot& snapshot)
{
    std::ostringstream line;
    line << "phase " << snapshot.phase << " | " << snapshot.healthySlaves
         << "/" << snapshot.slaves.size() << " slaves healthy | events "
         << snapshot.totalEvents;
    return line.str();
}

std::string
campaignProgressLine(const CampaignReport& report)
{
    std::ostringstream line;
    line << report.outcomes.size() << " points | " << report.cached
         << " cached, " << report.ran << " ran, " << report.failed
         << " failed, " << report.pending << " pending";
    return line.str();
}

} // namespace bighouse
