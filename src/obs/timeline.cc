#include "obs/timeline.hh"

#include <algorithm>
#include <fstream>
#include <utility>

#include "base/build_info.hh"
#include "base/logging.hh"

namespace bighouse {

// ---------------------------------------------------------------------
// TimelineGauge
// ---------------------------------------------------------------------

TimeWeightedStat
TimelineGauge::foldOpenWindow() const
{
    TimeWeightedStat stat = spill;
    for (std::size_t v = 0; v < kDirect; ++v) {
        if (direct[v] > 0.0)
            stat.addWeighted(static_cast<double>(v), direct[v]);
    }
    return stat;
}

void
TimelineGauge::advanceSlow(Time t)
{
    while (t >= windowEnd) {
        if (closed.size() + 1 >= maxWindows) {
            // The final window absorbs everything past the valve; the
            // export carries a truncated flag instead of OOM-ing on a
            // tiny width over a week of simulated time.
            truncated = true;
            windowEnd = std::numeric_limits<double>::infinity();
            break;
        }
        if (windowEnd > last)
            accumulate(windowEnd - last);
        last = windowEnd;
        closed.push_back(foldOpenWindow());
        direct.fill(0.0);
        spill = TimeWeightedStat{};
        windowEnd = width * static_cast<double>(closed.size() + 1);
    }
    if (t > last) {
        accumulate(t - last);
        last = t;
    }
}

std::vector<TimeWeightedStat>
TimelineGauge::harvest(Time now, bool* truncatedOut) const
{
    // Settle a copy: the live gauge keeps accumulating, so repeated
    // snapshots and the final result see consistent prefixes.
    TimelineGauge copy = *this;
    copy.advance(now);
    std::vector<TimeWeightedStat> out = std::move(copy.closed);
    TimeWeightedStat open = copy.foldOpenWindow();
    if (!open.empty())
        out.push_back(std::move(open));
    if (truncatedOut != nullptr)
        *truncatedOut = copy.truncated;
    return out;
}

// ---------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------

Timeline::Timeline(TimelineSpec specification) : spec(specification)
{
    if (spec.window <= 0.0)
        fatal("timeline window width must be > 0, got ", spec.window);
    if (spec.maxWindows == 0)
        fatal("timeline maxWindows must be >= 1");
    queueGauge = TimelineGauge(spec.window, spec.maxWindows);
    busyGauge = TimelineGauge(spec.window, spec.maxWindows);
    upGauge = TimelineGauge(spec.window, spec.maxWindows);
    retryGauge = TimelineGauge(spec.window, spec.maxWindows);
    dispatches = TimelineCounter(spec.window, spec.maxWindows);
    ejections = TimelineCounter(spec.window, spec.maxWindows);
    readmissions = TimelineCounter(spec.window, spec.maxWindows);
    tasksOk = TimelineCounter(spec.window, spec.maxWindows);
    tasksLost = TimelineCounter(spec.window, spec.maxWindows);
    waitSampler = TimelineSampler(spec.window, spec.maxWindows);
    sojournSampler = TimelineSampler(spec.window, spec.maxWindows);
}

void
Timeline::registerServers(std::size_t count)
{
    BH_REQUIRE(count > 0, "timeline needs at least one server");
    perServer.assign(count, ServerShadow{});
    totalQueued = 0;
    totalBusy = 0;
    upCount = static_cast<std::int64_t>(count);
    upGauge.set(0.0, static_cast<double>(upCount));
}

TimelineData
Timeline::harvest(Time now) const
{
    TimelineData data;
    data.window = spec.window;
    data.note = note;
    data.end = now;
    data.servers = perServer.size();

    bool truncated = false;
    const auto addGauge = [&](const char* name,
                              const TimelineGauge& gauge) {
        TimelineTrackData track;
        track.name = name;
        track.kind = "gauge";
        bool hitLimit = false;
        for (const TimeWeightedStat& stat : gauge.harvest(now, &hitLimit))
            track.windows.push_back(stat.serialize());
        truncated = truncated || hitLimit;
        data.tracks.push_back(std::move(track));
    };
    const auto addCounter = [&](const char* name,
                                const TimelineCounter& counter) {
        TimelineTrackData track;
        track.name = name;
        track.kind = "counter";
        track.counts = counter.values();
        truncated = truncated || counter.hitLimit();
        data.tracks.push_back(std::move(track));
    };
    const auto addSamples = [&](const char* name,
                                const TimelineSampler& sampler) {
        TimelineTrackData track;
        track.name = name;
        track.kind = "samples";
        for (const TimeWeightedStat& stat : sampler.values())
            track.windows.push_back(stat.serialize());
        truncated = truncated || sampler.hitLimit();
        data.tracks.push_back(std::move(track));
    };

    if (recurrenceWired) {
        addSamples("sojourn_time", sojournSampler);
        addSamples("wait_time", waitSampler);
    } else {
        if (!perServer.empty()) {
            if (spec.queueDepth)
                addGauge("queue_depth", queueGauge);
            if (spec.busyCores)
                addGauge("busy_cores", busyGauge);
            if (spec.availability)
                addGauge("servers_up", upGauge);
        }
        if (balancerWired && spec.dispatch) {
            addCounter("dispatches", dispatches);
            addCounter("ejections", ejections);
            addCounter("readmissions", readmissions);
        }
        if (retryWired && spec.retries) {
            addGauge("retry_inflight", retryGauge);
            addCounter("tasks_lost", tasksLost);
            addCounter("tasks_ok", tasksOk);
        }
    }
    std::sort(data.tracks.begin(), data.tracks.end(),
              [](const TimelineTrackData& a, const TimelineTrackData& b) {
                  return a.name < b.name;
              });
    data.truncated = truncated;
    return data;
}

// ---------------------------------------------------------------------
// JSON round trip (results_io embeds this in result documents)
// ---------------------------------------------------------------------

JsonValue
timelineDataToJson(const TimelineData& data)
{
    JsonValue::Array tracks;
    tracks.reserve(data.tracks.size());
    for (const TimelineTrackData& track : data.tracks) {
        JsonValue::Object obj;
        obj.emplace("kind", JsonValue(track.kind));
        obj.emplace("name", JsonValue(track.name));
        if (track.kind == "counter") {
            JsonValue::Array counts;
            counts.reserve(track.counts.size());
            for (std::uint64_t c : track.counts)
                counts.emplace_back(static_cast<double>(c));
            obj.emplace("counts", JsonValue(std::move(counts)));
        } else {
            JsonValue::Array windows;
            windows.reserve(track.windows.size());
            for (const std::string& stat : track.windows)
                windows.emplace_back(stat);
            obj.emplace("windows", JsonValue(std::move(windows)));
        }
        tracks.emplace_back(std::move(obj));
    }
    JsonValue::Object obj;
    obj.emplace("end", JsonValue(data.end));
    obj.emplace("note", JsonValue(data.note));
    obj.emplace("servers", JsonValue(static_cast<double>(data.servers)));
    obj.emplace("source", JsonValue(data.source));
    obj.emplace("tracks", JsonValue(std::move(tracks)));
    obj.emplace("truncated", JsonValue(data.truncated));
    obj.emplace("window", JsonValue(data.window));
    return JsonValue(std::move(obj));
}

TimelineData
timelineDataFromJson(const JsonValue& json)
{
    if (!json.isObject())
        fatal("timeline data must be a JSON object");
    TimelineData data;
    const auto number = [&](const char* key) {
        const JsonValue* value = json.find(key);
        if (value == nullptr || !value->isNumber())
            fatal("timeline data missing number '", key, "'");
        return value->asNumber();
    };
    data.window = number("window");
    data.end = number("end");
    data.servers = static_cast<std::uint64_t>(number("servers"));
    const JsonValue* source = json.find("source");
    if (source != nullptr && source->isString())
        data.source = source->asString();
    const JsonValue* note = json.find("note");
    if (note != nullptr && note->isString())
        data.note = note->asString();
    const JsonValue* truncated = json.find("truncated");
    if (truncated != nullptr && truncated->isBool())
        data.truncated = truncated->asBool();
    const JsonValue* tracks = json.find("tracks");
    if (tracks == nullptr || !tracks->isArray())
        fatal("timeline data missing 'tracks' array");
    for (const JsonValue& entry : tracks->asArray()) {
        TimelineTrackData track;
        const JsonValue* name = entry.find("name");
        const JsonValue* kind = entry.find("kind");
        if (name == nullptr || !name->isString() || kind == nullptr
            || !kind->isString()) {
            fatal("timeline track needs string 'name' and 'kind'");
        }
        track.name = name->asString();
        track.kind = kind->asString();
        if (track.kind == "counter") {
            const JsonValue* counts = entry.find("counts");
            if (counts == nullptr || !counts->isArray())
                fatal("counter track '", track.name, "' missing counts");
            for (const JsonValue& c : counts->asArray())
                track.counts.push_back(
                    static_cast<std::uint64_t>(c.asNumber()));
        } else {
            const JsonValue* windows = entry.find("windows");
            if (windows == nullptr || !windows->isArray())
                fatal("track '", track.name, "' missing windows");
            for (const JsonValue& w : windows->asArray())
                track.windows.push_back(w.asString());
        }
        data.tracks.push_back(std::move(track));
    }
    return data;
}

// ---------------------------------------------------------------------
// bighouse-timeline-v1 export (JSONL / CSV)
// ---------------------------------------------------------------------

namespace {

JsonValue
buildProvenance()
{
    const BuildInfo& build = buildInfo();
    JsonValue::Object obj;
    obj.emplace("compiler", JsonValue(build.compiler));
    obj.emplace("flags", JsonValue(build.flags));
    obj.emplace("gitDescribe", JsonValue(build.gitDescribe));
    obj.emplace("sanitizer", JsonValue(build.sanitizer));
    obj.emplace("type", JsonValue(build.buildType));
    return JsonValue(std::move(obj));
}

std::string
collectNote(const std::vector<TimelineData>& sources)
{
    for (const TimelineData& data : sources) {
        if (!data.note.empty())
            return data.note;
    }
    return {};
}

bool
anyTruncated(const std::vector<TimelineData>& sources)
{
    for (const TimelineData& data : sources) {
        if (data.truncated)
            return true;
    }
    return false;
}

/** One flattened export record (a window of one track of one source). */
struct TimelineRecord
{
    const TimelineData* source = nullptr;
    const TimelineTrackData* track = nullptr;
    std::uint64_t window = 0;
    bool isCounter = false;
    std::uint64_t count = 0;        ///< counter events or stat count
    TimeWeightedStat stat;          ///< gauge/samples kinds only
};

/** Expand in stable order: source position, track name, window index. */
template <typename Fn>
void
forEachRecord(const std::vector<TimelineData>& sources, Fn&& fn)
{
    for (const TimelineData& data : sources) {
        for (const TimelineTrackData& track : data.tracks) {
            if (track.kind == "counter") {
                for (std::uint64_t w = 0; w < track.counts.size(); ++w) {
                    TimelineRecord record;
                    record.source = &data;
                    record.track = &track;
                    record.window = w;
                    record.isCounter = true;
                    record.count = track.counts[w];
                    fn(record);
                }
            } else {
                for (std::uint64_t w = 0; w < track.windows.size(); ++w) {
                    TimelineRecord record;
                    record.source = &data;
                    record.track = &track;
                    record.window = w;
                    record.stat =
                        TimeWeightedStat::deserialize(track.windows[w]);
                    if (record.stat.empty())
                        continue;  // an idle sample window carries nothing
                    record.count = record.stat.count();
                    fn(record);
                }
            }
        }
    }
}

} // namespace

void
writeTimelineJsonl(const std::string& path,
                   const std::vector<TimelineData>& sources)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open ", path, " for writing");
    JsonValue::Object header;
    header.emplace("build", buildProvenance());
    header.emplace("format", JsonValue("bighouse-timeline-v1"));
    header.emplace("note", JsonValue(collectNote(sources)));
    header.emplace("sources",
                   JsonValue(static_cast<double>(sources.size())));
    header.emplace("window",
                   JsonValue(sources.empty() ? 0.0 : sources[0].window));
    header.emplace("truncated", JsonValue(anyTruncated(sources)));
    out << JsonValue(std::move(header)).dump() << "\n";
    forEachRecord(sources, [&](const TimelineRecord& record) {
        const double width = record.source->window;
        JsonValue::Object obj;
        obj.emplace("count",
                    JsonValue(static_cast<double>(record.count)));
        obj.emplace("end",
                    JsonValue(width
                              * static_cast<double>(record.window + 1)));
        obj.emplace("kind", JsonValue(record.track->kind));
        if (!record.isCounter) {
            obj.emplace("max", JsonValue(record.stat.max()));
            obj.emplace("mean", JsonValue(record.stat.mean()));
            obj.emplace("min", JsonValue(record.stat.min()));
            obj.emplace("p50", JsonValue(record.stat.quantile(0.50)));
            obj.emplace("p95", JsonValue(record.stat.quantile(0.95)));
            obj.emplace("p99", JsonValue(record.stat.quantile(0.99)));
            obj.emplace("weight", JsonValue(record.stat.totalWeight()));
        }
        obj.emplace("source", JsonValue(record.source->source));
        obj.emplace("start",
                    JsonValue(width * static_cast<double>(record.window)));
        obj.emplace("track", JsonValue(record.track->name));
        obj.emplace("window",
                    JsonValue(static_cast<double>(record.window)));
        out << JsonValue(std::move(obj)).dump() << "\n";
    });
    if (!out)
        fatal("failed writing timeline to ", path);
}

void
writeTimelineCsv(const std::string& path,
                 const std::vector<TimelineData>& sources)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open ", path, " for writing");
    out.precision(12);
    const BuildInfo& build = buildInfo();
    out << "# bighouse-timeline-v1\n";
    out << "# build: " << build.gitDescribe << ", " << build.compiler
        << ", " << build.buildType << ", sanitizer " << build.sanitizer
        << "\n";
    const std::string note = collectNote(sources);
    if (!note.empty())
        out << "# note: " << note << "\n";
    out << "source,track,kind,window,start,end,count,weight,mean,min,max,"
           "p50,p95,p99\n";
    forEachRecord(sources, [&](const TimelineRecord& record) {
        const double width = record.source->window;
        out << record.source->source << "," << record.track->name << ","
            << record.track->kind << "," << record.window << ","
            << width * static_cast<double>(record.window) << ","
            << width * static_cast<double>(record.window + 1) << ","
            << record.count;
        if (record.isCounter) {
            out << ",,,,,,,";
        } else {
            out << "," << record.stat.totalWeight() << ","
                << record.stat.mean() << "," << record.stat.min() << ","
                << record.stat.max() << "," << record.stat.quantile(0.5)
                << "," << record.stat.quantile(0.95) << ","
                << record.stat.quantile(0.99);
        }
        out << "\n";
    });
    if (!out)
        fatal("failed writing timeline to ", path);
}

} // namespace bighouse
