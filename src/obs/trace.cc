#include "obs/trace.hh"

#include "base/logging.hh"
#include "obs/status.hh"
#include "sim/engine.hh"

namespace bighouse {

TraceFormat
traceFormatFromName(std::string_view name)
{
    if (name == "chrome")
        return TraceFormat::Chrome;
    if (name == "jsonl")
        return TraceFormat::Jsonl;
    fatal("unknown trace format '", std::string(name),
          "' (expected chrome or jsonl)");
}

TraceBuffer::TraceBuffer(std::string label, std::size_t capacity)
    : name(std::move(label))
{
    if (capacity == 0)
        fatal("TraceBuffer capacity must be >= 1");
    ring.resize(capacity);
}

void
TraceBuffer::attachTo(Engine& engine)
{
    engine.setTraceHook(&TraceBuffer::hook, this);
}

std::vector<TraceRecord>
TraceBuffer::records() const
{
    const auto cap = static_cast<std::uint64_t>(ring.size());
    const std::uint64_t kept = count < cap ? count : cap;
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(kept));
    // Oldest retained record first: the ring write cursor is count % cap,
    // which is exactly where the oldest record sits once wrapped.
    const std::uint64_t first = count - kept;
    for (std::uint64_t i = 0; i < kept; ++i)
        out.push_back(ring[static_cast<std::size_t>((first + i) % cap)]);
    return out;
}

TraceBuffer&
TraceSet::addTrack(std::string label)
{
    std::lock_guard<std::mutex> lock(mtx);
    return buffers.emplace_back(std::move(label), cap);
}

TraceBuffer&
TraceSet::attach(Engine& engine, std::string label)
{
    TraceBuffer& track = addTrack(std::move(label));
    track.attachTo(engine);
    return track;
}

std::size_t
TraceSet::trackCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return buffers.size();
}

JsonValue
TraceSet::chromeTraceJson() const
{
    std::lock_guard<std::mutex> lock(mtx);
    JsonValue::Array events;
    int tid = 0;
    for (const TraceBuffer& track : buffers) {
        {
            // Track naming: Perfetto renders one labeled row per tid.
            JsonValue::Object nameArgs;
            nameArgs.emplace("name", JsonValue(track.label()));
            JsonValue::Object meta;
            meta.emplace("name", JsonValue(std::string("thread_name")));
            meta.emplace("ph", JsonValue(std::string("M")));
            meta.emplace("pid", JsonValue(1));
            meta.emplace("tid", JsonValue(tid));
            meta.emplace("args", JsonValue(std::move(nameArgs)));
            events.emplace_back(std::move(meta));
        }
        const std::vector<TraceRecord> records = track.records();
        for (std::size_t i = 0; i < records.size(); ++i) {
            const TraceRecord& record = records[i];
            // Simulated seconds -> trace-event microseconds. Duration
            // spans to the next dispatch on this track: the gap between
            // events is the time the simulated system spent in the state
            // this event established.
            const double ts = record.time * 1e6;
            const double dur =
                i + 1 < records.size()
                    ? records[i + 1].time * 1e6 - ts
                    : 0.0;
            JsonValue::Object args;
            args.emplace("seq", JsonValue(static_cast<double>(record.seq)));
            JsonValue::Object event;
            event.emplace("name", JsonValue(std::string("event")));
            event.emplace("ph", JsonValue(std::string("X")));
            event.emplace("pid", JsonValue(1));
            event.emplace("tid", JsonValue(tid));
            event.emplace("ts", JsonValue(ts));
            event.emplace("dur", JsonValue(dur));
            event.emplace("args", JsonValue(std::move(args)));
            events.emplace_back(std::move(event));
        }
        ++tid;
    }
    JsonValue::Object root;
    root.emplace("displayTimeUnit", JsonValue(std::string("ms")));
    root.emplace("traceEvents", JsonValue(std::move(events)));
    return JsonValue(std::move(root));
}

std::string
TraceSet::jsonl() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::string out;
    for (const TraceBuffer& track : buffers) {
        for (const TraceRecord& record : track.records()) {
            JsonValue::Object line;
            line.emplace("track", JsonValue(track.label()));
            line.emplace("time", JsonValue(record.time));
            line.emplace("seq",
                         JsonValue(static_cast<double>(record.seq)));
            out += JsonValue(std::move(line)).dump(0);
            out += '\n';
        }
    }
    return out;
}

void
TraceSet::write(const std::string& path, TraceFormat format) const
{
    if (format == TraceFormat::Chrome)
        writeFileAtomic(path, chromeTraceJson().dump(2) + "\n");
    else
        writeFileAtomic(path, jsonl());
}

} // namespace bighouse
