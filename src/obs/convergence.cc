#include "obs/convergence.hh"

#include <algorithm>
#include <map>

#include "core/sqs.hh"
#include "obs/status.hh"
#include "stats/collection.hh"

namespace bighouse {

void
ConvergenceRecorder::observe(const StatsCollection& stats,
                             std::uint64_t events)
{
    if (!samples.empty()) {
        const std::uint64_t last = samples.back().first;
        if (events == last)
            return;  // duplicate boundary (e.g. drained batch)
        if (cadence > 0 && events < last + cadence)
            return;
    }
    samples.emplace_back(events, stats.estimates());
}

void
ConvergenceRecorder::attachTo(SqsSimulation& sim)
{
    sim.setBatchObserver(
        [this](const SqsSimulation& s, std::uint64_t events) {
            observe(s.stats(), events);
        });
}

std::string
ConvergenceRecorder::bottleneck() const
{
    if (samples.empty())
        return "";
    std::string worst;
    std::uint64_t worstDeficit = 0;
    for (const MetricEstimate& estimate : samples.back().second) {
        if (estimate.converged)
            continue;
        // required can trail accepted transiently (the estimate of the
        // requirement sharpens as the sample grows); clamp to zero and
        // still surface the metric — unconverged with no deficit means
        // the convergence poll simply has not caught up.
        const std::uint64_t deficit =
            estimate.required > estimate.accepted
                ? estimate.required - estimate.accepted
                : 0;
        if (worst.empty() || deficit > worstDeficit) {
            worst = estimate.name;
            worstDeficit = deficit;
        }
    }
    return worst;
}

JsonValue
ConvergenceRecorder::toJson() const
{
    // name -> sample array; std::map keeps metrics name-sorted.
    std::map<std::string, JsonValue::Array> series;
    for (const auto& [events, estimates] : samples) {
        for (const MetricEstimate& estimate : estimates) {
            JsonValue::Object point;
            point.emplace("events",
                          JsonValue(static_cast<double>(events)));
            point.emplace("phase", JsonValue(std::string(
                                       phaseName(estimate.phase))));
            point.emplace("converged", JsonValue(estimate.converged));
            point.emplace("accepted", JsonValue(static_cast<double>(
                                          estimate.accepted)));
            point.emplace("offered", JsonValue(static_cast<double>(
                                         estimate.offered)));
            point.emplace("required", JsonValue(static_cast<double>(
                                          estimate.required)));
            point.emplace("lag", JsonValue(static_cast<double>(
                                     estimate.lag)));
            point.emplace("mean", JsonValue(estimate.mean));
            point.emplace("meanHalfWidth",
                          JsonValue(estimate.meanHalfWidth));
            point.emplace("relativeHalfWidth",
                          JsonValue(estimate.relativeHalfWidth));
            series[estimate.name].emplace_back(std::move(point));
        }
    }
    JsonValue::Object metrics;
    for (auto& [name, points] : series) {
        JsonValue::Object metric;
        metric.emplace("samples", JsonValue(std::move(points)));
        metrics.emplace(name, JsonValue(std::move(metric)));
    }
    JsonValue::Object root;
    root.emplace("format",
                 JsonValue(std::string("bighouse-convergence-v1")));
    root.emplace("cadenceEvents",
                 JsonValue(static_cast<double>(cadence)));
    root.emplace("sampleCount",
                 JsonValue(static_cast<double>(samples.size())));
    root.emplace("bottleneck", JsonValue(bottleneck()));
    root.emplace("metrics", JsonValue(std::move(metrics)));
    return JsonValue(std::move(root));
}

void
ConvergenceRecorder::write(const std::string& path) const
{
    writeFileAtomic(path, toJson().dump(2) + "\n");
}

} // namespace bighouse
