#include "obs/telemetry.hh"

#include <algorithm>
#include <vector>

#include "base/build_info.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "obs/status.hh"
#include "queueing/failure.hh"
#include "sim/engine.hh"
#include "stats/collection.hh"

namespace bighouse {

const char*
telemetryCounterName(TelemetryCounter counter)
{
    switch (counter) {
      case TelemetryCounter::EventsExecuted:
        return "engine.eventsExecuted";
      case TelemetryCounter::EventsPushed:
        return "engine.eventsPushed";
      case TelemetryCounter::AllocationsAvoided:
        return "engine.allocationsAvoided";
      case TelemetryCounter::QueueLiveSlots:
        return "queue.liveSlots";
      case TelemetryCounter::QueueDeadSlots:
        return "queue.deadSlots";
      case TelemetryCounter::QueueHeapSlots:
        return "queue.heapSlots";
      case TelemetryCounter::QueueCompactions:
        return "queue.compactions";
      case TelemetryCounter::RngDraws:
        return "rng.draws";
      case TelemetryCounter::SamplesOffered:
        return "stats.samplesOffered";
      case TelemetryCounter::SamplesAccepted:
        return "stats.samplesAccepted";
      case TelemetryCounter::BatchesObserved:
        return "sqs.batchesObserved";
      case TelemetryCounter::CalibrationEvents:
        return "sqs.calibrationEvents";
      case TelemetryCounter::PointsCached:
        return "campaign.pointsCached";
      case TelemetryCounter::PointsRan:
        return "campaign.pointsRan";
      case TelemetryCounter::PointsFailed:
        return "campaign.pointsFailed";
      case TelemetryCounter::PointsPending:
        return "campaign.pointsPending";
      case TelemetryCounter::FailuresInjected:
        return "failures.injected";
      case TelemetryCounter::RepairsCompleted:
        return "failures.repaired";
      case TelemetryCounter::TasksDropped:
        return "failures.tasksDropped";
      case TelemetryCounter::TasksRequeued:
        return "failures.tasksRequeued";
      case TelemetryCounter::TasksRetried:
        return "failures.tasksRetried";
      case TelemetryCounter::TasksLost:
        return "failures.tasksLost";
      case TelemetryCounter::BackendsEjected:
        return "failures.backendsEjected";
      case TelemetryCounter::BackendsReadmitted:
        return "failures.backendsReadmitted";
      case TelemetryCounter::RecurrenceTasks:
        return "sim.recurrenceTasks";
      case TelemetryCounter::kCount:
        break;
    }
    return "unknown";
}

const char*
telemetryGaugeName(TelemetryGauge gauge)
{
    switch (gauge) {
      case TelemetryGauge::CalibrationSeconds:
        return "phase.calibrationSeconds";
      case TelemetryGauge::MeasurementSeconds:
        return "phase.measurementSeconds";
      case TelemetryGauge::RunSeconds:
        return "phase.runSeconds";
      case TelemetryGauge::kCount:
        break;
    }
    return "unknown";
}

void
TelemetrySlab::addGauge(TelemetryGauge gauge, double seconds)
{
    // CAS accumulation: std::atomic<double>::fetch_add is C++20 but not
    // uniformly lock-free; gauges are updated a handful of times per
    // run, so the loop costs nothing.
    std::atomic<double>& cell = gaugeCell(gauge);
    double expected = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(expected, expected + seconds,
                                       std::memory_order_relaxed)) {
    }
}

TelemetrySlab&
TelemetryRegistry::slab(const std::string& label)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (TelemetrySlab& s : slabs) {
        if (s.label() == label)
            return s;
    }
    return slabs.emplace_back(label);
}

namespace {

JsonValue
slabToJson(const TelemetrySlab& slab)
{
    JsonValue::Object counters;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TelemetryCounter::kCount); ++i) {
        const auto counter = static_cast<TelemetryCounter>(i);
        counters.emplace(
            telemetryCounterName(counter),
            JsonValue(static_cast<double>(slab.value(counter))));
    }
    JsonValue::Object gauges;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TelemetryGauge::kCount); ++i) {
        const auto gauge = static_cast<TelemetryGauge>(i);
        gauges.emplace(telemetryGaugeName(gauge),
                       JsonValue(slab.gauge(gauge)));
    }
    JsonValue::Object obj;
    obj.emplace("label", JsonValue(slab.label()));
    obj.emplace("counters", JsonValue(std::move(counters)));
    obj.emplace("gauges", JsonValue(std::move(gauges)));
    return JsonValue(std::move(obj));
}

} // namespace

JsonValue
TelemetryRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<const TelemetrySlab*> ordered;
    ordered.reserve(slabs.size());
    for (const TelemetrySlab& slab : slabs)
        ordered.push_back(&slab);
    std::sort(ordered.begin(), ordered.end(),
              [](const TelemetrySlab* a, const TelemetrySlab* b) {
                  return a->label() < b->label();
              });

    JsonValue::Array slabJson;
    slabJson.reserve(ordered.size());
    JsonValue::Object totals;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TelemetryCounter::kCount); ++i) {
        const auto counter = static_cast<TelemetryCounter>(i);
        std::uint64_t total = 0;
        for (const TelemetrySlab* slab : ordered)
            total += slab->value(counter);
        totals.emplace(telemetryCounterName(counter),
                       JsonValue(static_cast<double>(total)));
    }
    for (const TelemetrySlab* slab : ordered)
        slabJson.push_back(slabToJson(*slab));

    const BuildInfo& build = buildInfo();
    JsonValue::Object buildObj;
    buildObj.emplace("compiler", JsonValue(build.compiler));
    buildObj.emplace("flags", JsonValue(build.flags));
    buildObj.emplace("gitDescribe", JsonValue(build.gitDescribe));
    buildObj.emplace("sanitizer", JsonValue(build.sanitizer));
    buildObj.emplace("type", JsonValue(build.buildType));

    JsonValue::Object root;
    root.emplace("format",
                 JsonValue(std::string("bighouse-telemetry-v1")));
    root.emplace("build", JsonValue(std::move(buildObj)));
    root.emplace("slabs", JsonValue(std::move(slabJson)));
    root.emplace("totals", JsonValue(std::move(totals)));
    return JsonValue(std::move(root));
}

void
TelemetryRegistry::write(const std::string& path) const
{
    writeFileAtomic(path, snapshot().dump(2) + "\n");
}

void
sampleEngineTelemetry(TelemetrySlab& slab, const Engine& engine)
{
    const EventQueue& queue = engine.eventQueue();
    slab.set(TelemetryCounter::EventsExecuted, engine.eventsExecuted());
    slab.set(TelemetryCounter::EventsPushed, queue.pushCount());
    // Every push would be one std::function heap allocation in a naive
    // queue; InlineCallback + slot reuse make it zero.
    slab.set(TelemetryCounter::AllocationsAvoided, queue.pushCount());
    slab.set(TelemetryCounter::QueueLiveSlots, queue.size());
    slab.set(TelemetryCounter::QueueDeadSlots, queue.deadEntries());
    slab.set(TelemetryCounter::QueueHeapSlots, queue.heapSize());
    slab.set(TelemetryCounter::QueueCompactions, queue.compactions());
}

void
sampleStatsTelemetry(TelemetrySlab& slab, const StatsCollection& stats)
{
    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    for (std::size_t i = 0; i < stats.metricCount(); ++i) {
        offered += stats.metric(i).offeredCount();
        accepted += stats.metric(i).acceptedCount();
    }
    slab.set(TelemetryCounter::SamplesOffered, offered);
    slab.set(TelemetryCounter::SamplesAccepted, accepted);
}

void
sampleRngTelemetry(TelemetrySlab& slab)
{
    slab.set(TelemetryCounter::RngDraws, threadRngDraws());
}

void
sampleFailureTelemetry(TelemetrySlab& slab, const FailureTotals& totals)
{
    slab.set(TelemetryCounter::FailuresInjected,
             totals.counters.failuresInjected);
    slab.set(TelemetryCounter::RepairsCompleted,
             totals.counters.repairsCompleted);
    slab.set(TelemetryCounter::TasksDropped, totals.counters.tasksDropped);
    slab.set(TelemetryCounter::TasksRequeued,
             totals.counters.tasksRequeued);
    slab.set(TelemetryCounter::TasksRetried, totals.counters.tasksRetried);
    slab.set(TelemetryCounter::TasksLost, totals.counters.tasksLost);
    slab.set(TelemetryCounter::BackendsEjected,
             totals.counters.backendsEjected);
    slab.set(TelemetryCounter::BackendsReadmitted,
             totals.counters.backendsReadmitted);
}

} // namespace bighouse
