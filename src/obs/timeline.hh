/**
 * @file
 * Timeline — simulated-time observability for transient behavior.
 *
 * PR 5's observability layer watches the *host process* (wall-time
 * telemetry, Chrome traces); this layer watches the *simulated system*:
 * queue depths, busy cores, servers up, retry occupancy, dispatch and
 * ejection waves — the signals that make failure storms and metastable
 * goodput collapse visible as time series instead of a single steady-
 * state number.
 *
 * Design constraints, in order:
 *
 *  1. Zero perturbation. Probes piggyback on event hook points that
 *     already execute (Server::accept/finish/fail/repair, balancer
 *     dispatch, retry resolution). An instrumented run schedules no
 *     extra events and draws no RNG, so estimates and histogram bytes
 *     stay bit-identical to an uninstrumented run (the PR 5 guarantee,
 *     enforced by TraceReproducibility.ObservabilityHooksDoNotPerturb-
 *     Results).
 *  2. Cheap enough to leave on. Gauge probes are plain-function-pointer
 *     calls into an inline fast path: integer gauge values accumulate
 *     into a direct-mapped weight array (one indexed add per
 *     transition); the TimeWeightedStat sketch is only built when a
 *     window closes. bench/bh_perf's micro_timeline scenario gates the
 *     overhead.
 *  3. Mergeable. Windows are aligned to simulated t = 0 with a fixed
 *     width, so parallel runs export per-slave tracks over master-
 *     aligned windows and campaign exports concatenate cleanly.
 *
 * The recurrence backend has no event stream to probe; it degrades to
 * per-task wait/sojourn sample windows keyed by arrival time, with the
 * limitation recorded in the output header (docs/observability.md).
 */

#ifndef BIGHOUSE_OBS_TIMELINE_HH
#define BIGHOUSE_OBS_TIMELINE_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/contracts.hh"
#include "base/time.hh"
#include "config/json.hh"
#include "stats/time_weighted.hh"

namespace bighouse {

/** What to record, and at what resolution (the config `timeline` block). */
struct TimelineSpec
{
    /// Window width in simulated seconds (> 0).
    double window = 1.0;
    /// Safety valve: past this many windows the final window absorbs
    /// the remainder and the output is flagged truncated, so a tiny
    /// width on a week-long simulation cannot exhaust memory.
    std::uint64_t maxWindows = 65536;
    bool queueDepth = true;     ///< gauge: queued tasks, cluster-wide
    bool busyCores = true;      ///< gauge: busy cores, cluster-wide
    bool availability = true;   ///< gauge: servers currently up
    bool dispatch = true;       ///< counters: dispatches/ejections/readmissions
    bool retries = true;        ///< retry occupancy gauge + outcome counters
};

/** One exported track: a window-indexed series. */
struct TimelineTrackData
{
    std::string name;   ///< e.g. "queue_depth"
    std::string kind;   ///< "gauge" | "counter" | "samples"
    /// Serialized TimeWeightedStat per window (gauge/samples kinds).
    std::vector<std::string> windows;
    /// Events per window (counter kind).
    std::vector<std::uint64_t> counts;
};

/** A harvested timeline: everything needed to export or merge. */
struct TimelineData
{
    double window = 1.0;        ///< window width (simulated seconds)
    std::string source = "serial";  ///< "serial" | "master" | "slave-N" | ...
    std::string note;           ///< backend limitation note, if any
    bool truncated = false;     ///< a track hit the maxWindows valve
    double end = 0.0;           ///< simulated clock at harvest
    std::uint64_t servers = 0;  ///< cluster size (availability divisor)
    std::vector<TimelineTrackData> tracks;  ///< name-sorted
};

/** Full-fidelity JSON for the results_io round trip. */
JsonValue timelineDataToJson(const TimelineData& data);
TimelineData timelineDataFromJson(const JsonValue& json);

/**
 * Write `bighouse-timeline-v1` output: a build-provenance header, then
 * one record per (source, track, window), ordered by source position,
 * track name, window index — reruns diff cleanly.
 */
void writeTimelineJsonl(const std::string& path,
                        const std::vector<TimelineData>& sources);
void writeTimelineCsv(const std::string& path,
                      const std::vector<TimelineData>& sources);

/** A piecewise-constant signal split across aligned windows. */
class TimelineGauge
{
  public:
    TimelineGauge() = default;
    TimelineGauge(double width, std::uint64_t maxWindows)
        : windowEnd(width), width(width), maxWindows(maxWindows)
    {
        BH_REQUIRE(width > 0.0, "window width must be > 0");
        BH_REQUIRE(maxWindows > 0, "maxWindows must be > 0");
    }

    /** The signal takes `value` at time `t` (no-op while unchanged). */
    void set(Time t, double value)
    {
        if (value == current)
            return;
        advance(t);
        current = value;
        const auto index = static_cast<std::size_t>(value);
        directSlot = static_cast<double>(index) == value && index < kDirect
                         ? static_cast<std::int32_t>(index)
                         : -1;
    }

    /** Charge the open interval up to `t` without changing the value. */
    void advance(Time t)
    {
        if (t <= last)
            return;  // same-instant transitions carry zero weight
        if (t < windowEnd) {
            accumulate(t - last);
            last = t;
        } else {
            advanceSlow(t);
        }
    }

    double value() const { return current; }

    /**
     * Closed windows + the folded open window, settled at `now` (on a
     * copy — the live gauge keeps running). `truncatedOut` reports
     * whether the maxWindows valve engaged.
     */
    std::vector<TimeWeightedStat> harvest(Time now,
                                          bool* truncatedOut) const;

    bool hitLimit() const { return truncated; }

  private:
    void accumulate(double dt)
    {
        // Small-integer fast path: queue depths, core counts, and
        // up-server counts are almost always < kDirect, so a window is
        // one flat weight array until it closes; the log2 sketch is
        // built once per window, not once per event. The slot is
        // resolved in set() — per weight charge this is one branch and
        // one add.
        if (directSlot >= 0)
            direct[static_cast<std::size_t>(directSlot)] += dt;
        else
            spill.addWeighted(current, dt);
    }

    void advanceSlow(Time t);
    TimeWeightedStat foldOpenWindow() const;

    static constexpr std::size_t kDirect = 128;
    std::array<double, kDirect> direct{};
    TimeWeightedStat spill;  ///< non-integer / large values this window
    std::vector<TimeWeightedStat> closed;
    std::int32_t directSlot = 0;  ///< direct[] bin for `current`; -1 = spill
    double current = 0.0;
    double last = 0.0;
    double windowEnd = 1.0;
    double width = 1.0;
    std::uint64_t maxWindows = 1;
    bool truncated = false;
};

/** Per-window event counts (dispatches, ejections, task outcomes). */
class TimelineCounter
{
  public:
    TimelineCounter() = default;
    TimelineCounter(double width, std::uint64_t maxWindows)
        : invWidth(1.0 / width), maxWindows(maxWindows)
    {
        BH_REQUIRE(width > 0.0, "window width must be > 0");
    }

    void add(Time t)
    {
        auto index = static_cast<std::uint64_t>(t * invWidth);
        if (index >= maxWindows) {
            index = maxWindows - 1;
            truncated = true;
        }
        if (index >= counts.size())
            counts.resize(index + 1, 0);
        ++counts[index];
    }

    const std::vector<std::uint64_t>& values() const { return counts; }
    bool hitLimit() const { return truncated; }

  private:
    std::vector<std::uint64_t> counts;
    double invWidth = 1.0;
    std::uint64_t maxWindows = 1;
    bool truncated = false;
};

/** Per-event samples bucketed by timestamp (recurrence degradation). */
class TimelineSampler
{
  public:
    TimelineSampler() = default;
    TimelineSampler(double width, std::uint64_t maxWindows)
        : invWidth(1.0 / width), maxWindows(maxWindows)
    {
        BH_REQUIRE(width > 0.0, "window width must be > 0");
    }

    void add(Time t, double value)
    {
        auto index = static_cast<std::uint64_t>(t * invWidth);
        if (index >= maxWindows) {
            index = maxWindows - 1;
            truncated = true;
        }
        if (index >= windows.size())
            windows.resize(index + 1);
        windows[index].addWeighted(value, 1.0);
    }

    const std::vector<TimeWeightedStat>& values() const { return windows; }
    bool hitLimit() const { return truncated; }

  private:
    std::vector<TimeWeightedStat> windows;
    double invWidth = 1.0;
    std::uint64_t maxWindows = 1;
    bool truncated = false;
};

/**
 * The live collector one simulation feeds. Built by
 * Experiment::buildInto when the spec carries a timeline block; owned
 * by the simulation (SqsSimulation::setTimeline) and harvested into
 * every snapshot()/run() result.
 */
class Timeline
{
  public:
    explicit Timeline(TimelineSpec spec);

    const TimelineSpec& specification() const { return spec; }

    /** Size the per-server shadow state (servers start up and idle). */
    void registerServers(std::size_t count);

    /** Size the per-retry-queue shadow state (queues start empty). */
    void registerRetryQueues(std::size_t count)
    {
        retryShadow.assign(count, 0);
    }

    /// ---- DES probes (no RNG, no events — called from model hooks) ----

    /** One server's externally visible state after an event. */
    void serverState(std::size_t id, Time t, std::size_t queued,
                     unsigned busy, bool up)
    {
        ServerShadow& shadow = perServer[id];
        const auto q = static_cast<std::int64_t>(queued);
        if (q != shadow.queued) {
            totalQueued += q - shadow.queued;
            shadow.queued = q;
            queueGauge.set(t, static_cast<double>(totalQueued));
        }
        const auto b = static_cast<std::int64_t>(busy);
        if (b != shadow.busy) {
            totalBusy += b - shadow.busy;
            shadow.busy = b;
            busyGauge.set(t, static_cast<double>(totalBusy));
        }
        if (up != shadow.up) {
            upCount += up ? 1 : -1;
            shadow.up = up;
            upGauge.set(t, static_cast<double>(upCount));
        }
    }

    void taskDispatched(Time t) { dispatches.add(t); }
    void serverHealth(Time t, bool admitted)
    {
        (admitted ? readmissions : ejections).add(t);
    }
    void retryOccupancy(std::size_t id, Time t, std::size_t outstanding)
    {
        // Same delta scheme as serverState: the gauge tracks the
        // cluster-wide in-flight population, not one queue's.
        std::int64_t& shadow = retryShadow[id];
        const auto o = static_cast<std::int64_t>(outstanding);
        if (o != shadow) {
            retryTotal += o - shadow;
            shadow = o;
            retryGauge.set(t, static_cast<double>(retryTotal));
        }
    }
    void taskOutcome(Time t, bool ok) { (ok ? tasksOk : tasksLost).add(t); }

    /// ---- recurrence degradation ----

    /** Per-task wait/sojourn keyed by arrival time (weight 1 each). */
    void recurrenceSample(Time arrival, double wait, double sojourn)
    {
        waitSampler.add(arrival, wait);
        sojournSampler.add(arrival, sojourn);
    }

    /** Record why station-state tracks are absent on this backend. */
    void setNote(std::string text) { note = std::move(text); }

    /// Which probe families the model wired (controls exported tracks).
    void enableBalancerTracks() { balancerWired = true; }
    void enableRetryTracks() { retryWired = true; }
    void enableRecurrenceTracks() { recurrenceWired = true; }

    /**
     * Harvest a copy of every enabled track, settled at `now`. Const —
     * the live accumulators keep running, so the parallel harness and
     * repeated snapshots see consistent prefixes.
     */
    TimelineData harvest(Time now) const;

    /// ---- function-pointer trampolines for the model hook points ----

    static void serverProbe(void* self, std::size_t id, Time t,
                            std::size_t queued, unsigned busy, bool up)
    {
        static_cast<Timeline*>(self)->serverState(id, t, queued, busy, up);
    }
    static void dispatchProbe(void* self, Time t)
    {
        static_cast<Timeline*>(self)->taskDispatched(t);
    }
    static void healthProbe(void* self, Time t, bool admitted)
    {
        static_cast<Timeline*>(self)->serverHealth(t, admitted);
    }
    static void retryProbe(void* self, std::size_t id, Time t,
                           std::size_t outstanding)
    {
        static_cast<Timeline*>(self)->retryOccupancy(id, t, outstanding);
    }
    static void outcomeProbe(void* self, Time t, bool ok)
    {
        static_cast<Timeline*>(self)->taskOutcome(t, ok);
    }
    static void recurrenceProbe(void* self, Time arrival, double wait,
                                double sojourn)
    {
        static_cast<Timeline*>(self)->recurrenceSample(arrival, wait,
                                                       sojourn);
    }

  private:
    struct ServerShadow
    {
        std::int64_t queued = 0;
        std::int64_t busy = 0;
        bool up = true;
    };

    TimelineSpec spec;
    std::string note;
    std::vector<ServerShadow> perServer;
    std::vector<std::int64_t> retryShadow;
    std::int64_t totalQueued = 0;
    std::int64_t totalBusy = 0;
    std::int64_t upCount = 0;
    std::int64_t retryTotal = 0;
    TimelineGauge queueGauge;
    TimelineGauge busyGauge;
    TimelineGauge upGauge;
    TimelineGauge retryGauge;
    TimelineCounter dispatches;
    TimelineCounter ejections;
    TimelineCounter readmissions;
    TimelineCounter tasksOk;
    TimelineCounter tasksLost;
    TimelineSampler waitSampler;
    TimelineSampler sojournSampler;
    bool balancerWired = false;
    bool retryWired = false;
    bool recurrenceWired = false;
};

} // namespace bighouse

#endif // BIGHOUSE_OBS_TIMELINE_HH
