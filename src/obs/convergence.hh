/**
 * @file
 * Convergence recorder — a time series of every output metric's
 * statistical state, sampled at batch boundaries.
 *
 * BigHouse runs end when the confidence intervals say so; when a run is
 * slow, the question is always *which metric* is holding termination and
 * *why* (wide interval? large lag spacing discarding observations? a
 * quantile's Nq dominating the mean's Nm?). The recorder samples each
 * metric's mean, CI half-width, lag state, and accepted/required counts
 * every `cadenceEvents` simulated events and renders an ordered
 * `bighouse-convergence-v1` JSON document whose byte stream is stable
 * across reruns of the same seed — diffable convergence history.
 *
 * Attachment is pull-based via SqsSimulation::setBatchObserver: nothing
 * is recorded (or even branched on) unless a recorder is installed.
 */

#ifndef BIGHOUSE_OBS_CONVERGENCE_HH
#define BIGHOUSE_OBS_CONVERGENCE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "config/json.hh"
#include "stats/metric.hh"

namespace bighouse {

class StatsCollection;
class SqsSimulation;

/** Records per-metric convergence state over a run. */
class ConvergenceRecorder
{
  public:
    /**
     * @param cadenceEvents minimum simulated events between samples;
     *        0 records at every observation (every batch boundary).
     */
    explicit ConvergenceRecorder(std::uint64_t cadenceEvents = 0)
        : cadence(cadenceEvents)
    {
    }

    /** Consider taking a sample at `events` executed events. */
    void observe(const StatsCollection& stats, std::uint64_t events);

    /**
     * Install this recorder as `sim`'s batch observer. The recorder
     * must outlive the simulation's run() call.
     */
    void attachTo(SqsSimulation& sim);

    std::size_t sampleCount() const { return samples.size(); }

    /**
     * The metric holding up termination at the last sample: the largest
     * (required - accepted) deficit. Empty when every metric was
     * converged (or nothing was sampled).
     */
    std::string bottleneck() const;

    /**
     * Ordered `bighouse-convergence-v1` document: per-metric sample
     * series (metrics name-sorted, samples in time order), the final
     * bottleneck, and the sampling cadence.
     */
    JsonValue toJson() const;

    /** toJson() to `path` via atomic write-then-rename. */
    void write(const std::string& path) const;

  private:
    std::uint64_t cadence;
    /// (events, per-metric estimates) in sample order.
    std::vector<std::pair<std::uint64_t, std::vector<MetricEstimate>>>
        samples;
};

} // namespace bighouse

#endif // BIGHOUSE_OBS_CONVERGENCE_HH
