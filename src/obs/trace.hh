/**
 * @file
 * Event-dispatch tracing behind Engine::setTraceHook.
 *
 * A TraceBuffer is a bounded ring of (time, seq) dispatch records fed by
 * the engine's trace hook — the same plain-function-pointer hook the
 * bit-reproducibility tests use, so attaching a trace cannot change a
 * simulation's event order. When the ring fills, the oldest records are
 * overwritten and counted as dropped; memory stays bounded no matter how
 * long the run is.
 *
 * A TraceSet groups one buffer per simulation instance ("master",
 * "slave-0", ...) and renders two formats:
 *  - Chrome trace-event JSON ("X" complete events, one tid per track,
 *    "M" thread_name metadata) — loads directly in Perfetto / Chrome's
 *    about:tracing, one named track per slave;
 *  - compact JSONL, one record per line, for ad-hoc scripting.
 */

#ifndef BIGHOUSE_OBS_TRACE_HH
#define BIGHOUSE_OBS_TRACE_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/time.hh"
#include "config/json.hh"

namespace bighouse {

class Engine;

/** Trace output formats. */
enum class TraceFormat
{
    Chrome,  ///< trace-event JSON (Perfetto / about:tracing)
    Jsonl,   ///< one JSON object per line
};

/** Parse "chrome" | "jsonl"; fatal() otherwise. */
TraceFormat traceFormatFromName(std::string_view name);

/** One dispatched event, as seen by the engine's trace hook. */
struct TraceRecord
{
    Time time = 0.0;
    std::uint64_t seq = 0;
};

/** Bounded ring of dispatch records for one simulation instance. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::string label, std::size_t capacity = 8192);

    TraceBuffer(const TraceBuffer&) = delete;
    TraceBuffer& operator=(const TraceBuffer&) = delete;

    const std::string& label() const { return name; }

    /** Append one record, overwriting the oldest when full. */
    void
    record(Time time, std::uint64_t seq)
    {
        ring[static_cast<std::size_t>(count % ring.size())] =
            TraceRecord{time, seq};
        ++count;
    }

    /** Engine::TraceFn thunk; `ctx` is the TraceBuffer. */
    static void
    hook(void* ctx, Time time, std::uint64_t seq)
    {
        static_cast<TraceBuffer*>(ctx)->record(time, seq);
    }

    /** Install this buffer as `engine`'s trace hook. */
    void attachTo(Engine& engine);

    /** Records dispatched into this buffer, lifetime total. */
    std::uint64_t total() const { return count; }

    /** Records lost to ring overwrite. */
    std::uint64_t
    dropped() const
    {
        const auto cap = static_cast<std::uint64_t>(ring.size());
        return count > cap ? count - cap : 0;
    }

    /** Retained records, oldest first. */
    std::vector<TraceRecord> records() const;

  private:
    std::string name;
    std::vector<TraceRecord> ring;
    std::uint64_t count = 0;
};

/** One trace track per simulation instance of a run. */
class TraceSet
{
  public:
    explicit TraceSet(std::size_t capacityPerTrack = 8192)
        : cap(capacityPerTrack)
    {
    }

    /**
     * Create a track. Thread-safe (slave threads add their own tracks);
     * the returned buffer is then single-writer — only the owning
     * simulation thread records into it.
     */
    TraceBuffer& addTrack(std::string label);

    /** addTrack + attachTo in one call. */
    TraceBuffer& attach(Engine& engine, std::string label);

    std::size_t trackCount() const;

    /**
     * Chrome trace-event document. Tracks become tids (in creation
     * order) under pid 1, each named by an "M" thread_name metadata
     * event; every record is an "X" complete event at ts = time * 1e6
     * (trace-event timestamps are microseconds) whose duration spans to
     * the track's next record. Call only after the traced simulations
     * quiesced.
     */
    JsonValue chromeTraceJson() const;

    /** Compact form: one {"track","time","seq"} object per line. */
    std::string jsonl() const;

    /** Render in `format` and write atomically (tmp + rename). */
    void write(const std::string& path, TraceFormat format) const;

  private:
    std::size_t cap;
    mutable std::mutex mtx;  ///< guards track creation only
    std::deque<TraceBuffer> buffers;  ///< deque: stable references
};

} // namespace bighouse

#endif // BIGHOUSE_OBS_TRACE_HH
