/**
 * @file
 * Telemetry registry — the counter/gauge surface of the observability
 * layer (src/obs).
 *
 * Simulator internals that previously were visible only through ad-hoc
 * accessors (events executed, queue live/dead slots, compactions, RNG
 * draws, allocations avoided, per-phase wall time) are aggregated into
 * named slabs — one per simulation instance ("master", "slave-3",
 * "campaign") — and snapshotted into a stable, ordered JSON document
 * (`bighouse-telemetry-v1`).
 *
 * Design constraints, in order:
 *  1. Zero hot-path cost when unused. Nothing in src/sim or src/stats
 *     pushes into the registry; slabs are *pulled* from engine/stats
 *     state at batch boundaries (every SqsConfig::batchEvents events) by
 *     the sampling helpers below. The only unconditional instrumentation
 *     anywhere is a thread_local increment in Rng::next() and a counter
 *     bump in the cold EventQueue::compact().
 *  2. Thread safety without contention. Slab cells are relaxed atomics;
 *     each simulation thread samples into its own slab, so the atomics
 *     only matter for the final cross-thread snapshot.
 *  3. Deterministic output. snapshot() orders slabs by label and cells
 *     by enum order; JsonValue keeps object keys sorted — two identical
 *     runs serialize byte-identical telemetry (modulo wall-time gauges).
 */

#ifndef BIGHOUSE_OBS_TELEMETRY_HH
#define BIGHOUSE_OBS_TELEMETRY_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "config/json.hh"

namespace bighouse {

class Engine;
class StatsCollection;
struct FailureTotals;

/** Monotonic counters a slab carries (one atomic cell each). */
enum class TelemetryCounter
{
    EventsExecuted,     ///< engine.eventsExecuted
    EventsPushed,       ///< engine.eventsPushed (queue pushCount)
    AllocationsAvoided, ///< engine.allocationsAvoided (see sampler note)
    QueueLiveSlots,     ///< queue.liveSlots (at last sample)
    QueueDeadSlots,     ///< queue.deadSlots (at last sample)
    QueueHeapSlots,     ///< queue.heapSlots (at last sample)
    QueueCompactions,   ///< queue.compactions
    RngDraws,           ///< rng.draws (thread_local tally; see sampler)
    SamplesOffered,     ///< stats.samplesOffered (sum over metrics)
    SamplesAccepted,    ///< stats.samplesAccepted (sum over metrics)
    BatchesObserved,    ///< sqs.batchesObserved
    CalibrationEvents,  ///< sqs.calibrationEvents
    PointsCached,       ///< campaign.pointsCached
    PointsRan,          ///< campaign.pointsRan
    PointsFailed,       ///< campaign.pointsFailed
    PointsPending,      ///< campaign.pointsPending
    FailuresInjected,   ///< failures.injected (server Up -> Down edges)
    RepairsCompleted,   ///< failures.repaired (server Down -> Up edges)
    TasksDropped,       ///< failures.tasksDropped (lost to Drop crashes)
    TasksRequeued,      ///< failures.tasksRequeued (demoted by Requeue)
    TasksRetried,       ///< failures.tasksRetried (retry-path re-offers)
    TasksLost,          ///< failures.tasksLost (terminally lost)
    BackendsEjected,    ///< failures.backendsEjected (balancer health)
    BackendsReadmitted, ///< failures.backendsReadmitted
    RecurrenceTasks,    ///< sim.recurrenceTasks (0 under the DES)
    kCount,
};

/** Wall-clock gauges (seconds) a slab carries. */
enum class TelemetryGauge
{
    CalibrationSeconds,  ///< phase.calibrationSeconds
    MeasurementSeconds,  ///< phase.measurementSeconds
    RunSeconds,          ///< phase.runSeconds
    kCount,
};

/** Stable dotted name of a counter ("engine.eventsExecuted", ...). */
const char* telemetryCounterName(TelemetryCounter counter);

/** Stable dotted name of a gauge ("phase.runSeconds", ...). */
const char* telemetryGaugeName(TelemetryGauge gauge);

/**
 * One named bundle of telemetry cells. Writers use relaxed atomics: a
 * slab is written by one simulation thread and read by the snapshotting
 * thread after that simulation quiesced, so ordering never carries data.
 */
class TelemetrySlab
{
  public:
    explicit TelemetrySlab(std::string label) : name(std::move(label)) {}

    TelemetrySlab(const TelemetrySlab&) = delete;
    TelemetrySlab& operator=(const TelemetrySlab&) = delete;

    const std::string& label() const { return name; }

    void
    add(TelemetryCounter counter, std::uint64_t delta = 1)
    {
        cell(counter).fetch_add(delta, std::memory_order_relaxed);
    }

    /** Overwrite a counter (used for sampled absolute values). */
    void
    set(TelemetryCounter counter, std::uint64_t value)
    {
        cell(counter).store(value, std::memory_order_relaxed);
    }

    std::uint64_t
    value(TelemetryCounter counter) const
    {
        return cell(counter).load(std::memory_order_relaxed);
    }

    void
    setGauge(TelemetryGauge gauge, double seconds)
    {
        gaugeCell(gauge).store(seconds, std::memory_order_relaxed);
    }

    /** Accumulate into a gauge (CAS loop; gauges are cold). */
    void addGauge(TelemetryGauge gauge, double seconds);

    double
    gauge(TelemetryGauge g) const
    {
        return gaugeCell(g).load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t>&
    cell(TelemetryCounter counter)
    {
        return counters[static_cast<std::size_t>(counter)];
    }
    const std::atomic<std::uint64_t>&
    cell(TelemetryCounter counter) const
    {
        return counters[static_cast<std::size_t>(counter)];
    }
    std::atomic<double>&
    gaugeCell(TelemetryGauge gauge)
    {
        return gauges[static_cast<std::size_t>(gauge)];
    }
    const std::atomic<double>&
    gaugeCell(TelemetryGauge gauge) const
    {
        return gauges[static_cast<std::size_t>(gauge)];
    }

    std::string name;
    std::array<std::atomic<std::uint64_t>,
               static_cast<std::size_t>(TelemetryCounter::kCount)>
        counters{};
    std::array<std::atomic<double>,
               static_cast<std::size_t>(TelemetryGauge::kCount)>
        gauges{};
};

/** Registry of slabs for one run (CLI invocation, test, bench). */
class TelemetryRegistry
{
  public:
    /**
     * Create-or-get the slab named `label`. Thread-safe; returned
     * references stay valid for the registry's lifetime (deque storage).
     */
    TelemetrySlab& slab(const std::string& label);

    /**
     * Ordered `bighouse-telemetry-v1` document: build info, per-slab
     * cells (slabs sorted by label), and counter totals across slabs.
     */
    JsonValue snapshot() const;

    /** snapshot() to `path` via atomic write-then-rename. */
    void write(const std::string& path) const;

  private:
    mutable std::mutex mtx;
    std::deque<TelemetrySlab> slabs;  ///< deque: stable references
};

/**
 * Pull engine/queue state into a slab. Sets absolute values, so calling
 * it every batch is idempotent-per-instant. AllocationsAvoided counts
 * scheduled events: the allocation-free queue (InlineCallback + slot
 * reuse) makes zero per-event allocations where a std::function-based
 * queue would make one per push.
 */
void sampleEngineTelemetry(TelemetrySlab& slab, const Engine& engine);

/** Pull per-metric offered/accepted totals into a slab. */
void sampleStatsTelemetry(TelemetrySlab& slab,
                          const StatsCollection& stats);

/**
 * Pull a run's failure totals into a slab (absolute values, idempotent
 * per instant). Serial runs sample once at the end; parallel runs
 * sample each slave's totals from ParallelConfig::onSlaveDone, so the
 * registry's cross-slab totals carry the ensemble counters.
 */
void sampleFailureTelemetry(TelemetrySlab& slab,
                            const FailureTotals& totals);

/**
 * Record the calling thread's cumulative Rng draw tally into the slab.
 * Exact when the slab's simulation ran wholly on the calling thread
 * (serial runs, parallel slaves via ParallelConfig::onSlaveDone).
 */
void sampleRngTelemetry(TelemetrySlab& slab);

/** Scope guard accumulating its lifetime into a wall-time gauge. */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(TelemetrySlab& slab, TelemetryGauge gauge)
        : target(slab), phase(gauge),
          start(std::chrono::steady_clock::now())
    {
    }

    ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
    ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

    ~ScopedPhaseTimer()
    {
        target.addGauge(
            phase, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    }

  private:
    TelemetrySlab& target;
    TelemetryGauge phase;
    std::chrono::steady_clock::time_point start;
};

} // namespace bighouse

#endif // BIGHOUSE_OBS_TELEMETRY_HH
