/**
 * @file
 * Space-efficient online quantile estimation via fixed-bin histograms,
 * after Chen & Kelton (2001): "recording and sorting the entire sample
 * sequence to determine quantiles imposes a large burden ... we use [a]
 * histogram representation of an observed variable, drastically reducing
 * memory overhead. This method requires the histogram binning parameters
 * to be determined in advance; we do so during the calibration phase."
 *
 * A BinScheme is the serializable "bin structure" the master broadcasts to
 * slaves (Fig. 3); two histograms merge only when their schemes match.
 */

#ifndef BIGHOUSE_STATS_HISTOGRAM_HH
#define BIGHOUSE_STATS_HISTOGRAM_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bighouse {

/** Immutable description of a histogram's bin layout. */
struct BinScheme
{
    double lo = 0.0;    ///< lower edge of the first regular bin
    double hi = 1.0;    ///< upper edge of the last regular bin
    std::size_t bins = 1;

    double
    binWidth() const
    {
        return (hi - lo) / static_cast<double>(bins);
    }

    bool operator==(const BinScheme&) const = default;

    /** One-line serialization (for master -> slave broadcast). */
    std::string serialize() const;

    /** Inverse of serialize(); fatal() on malformed input. */
    static BinScheme deserialize(const std::string& text);
};

/**
 * Derive a bin scheme from a calibration sample: the observed range is
 * expanded by `expand` on each side (relative to the spread) so that
 * steady-state observations modestly outside the calibration range still
 * land in regular bins; anything further is tracked by under/overflow
 * bins with exact extreme values.
 */
BinScheme suggestBinScheme(std::span<const double> calibration,
                           std::size_t bins, double expand = 0.5);

/** Fixed-bin counting histogram with interpolated quantiles. */
class Histogram
{
  public:
    explicit Histogram(BinScheme scheme);

    /**
     * Record one observation. Inline and branch-light: this sits on the
     * per-accepted-observation hot path of every output metric. The bin
     * width is precomputed once at construction (same `(hi-lo)/bins`
     * value binWidth() yields, so bin assignment is bit-identical to
     * dividing by a freshly computed width).
     */
    void
    add(double x)
    {
        if (x < layout.lo) {
            ++underflow;
        } else if (x >= layout.hi) {
            ++overflow;
        } else {
            auto bin = static_cast<std::size_t>((x - layout.lo) / width);
            if (bin >= counts.size())
                bin = counts.size() - 1;  // x just below hi with rounding
            ++counts[bin];
        }
        ++total;
        if (x < minValue)
            minValue = x;
        if (x > maxValue)
            maxValue = x;
    }

    /** Total recorded observations. */
    std::uint64_t count() const { return total; }

    /**
     * Interpolated q-quantile (q in [0,1]). Mass in the underflow
     * (overflow) bin is spread uniformly between the observed minimum
     * (maximum) and the regular range.
     * @pre count() > 0
     */
    double quantile(double q) const;

    /** Mean approximated from bin midpoints (useful for sanity checks). */
    double approximateMean() const;

    /**
     * Empirical CDF at x — the fraction of observations <= x, with mass
     * spread uniformly within each bin (the same piecewise-uniform model
     * quantile() inverts; underflow/overflow mass spreads between the
     * observed extremes and the regular range). The backend-agreement
     * tests compute Kolmogorov-Smirnov distances through this.
     * Returns 0 on an empty histogram.
     */
    double cdfAt(double x) const;

    /** Fraction of observations outside the regular bins. */
    double outOfRangeFraction() const;

    /** The layout this histogram was built with. */
    const BinScheme& scheme() const { return layout; }

    /** Smallest / largest recorded value. */
    double observedMin() const { return minValue; }
    double observedMax() const { return maxValue; }

    /**
     * Accumulate another histogram's counts (the Fig. 3 "merge" step).
     * fatal() when the schemes differ: slaves must use the broadcast
     * scheme.
     */
    void merge(const Histogram& other);

    /** Serialize counts + scheme to one line (slave -> master). */
    std::string serialize() const;

    /** Inverse of serialize(); fatal() on malformed input. */
    static Histogram deserialize(const std::string& text);

  private:
    BinScheme layout;
    /// Cached layout.binWidth(), so add() divides without recomputing it.
    double width = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

} // namespace bighouse

#endif // BIGHOUSE_STATS_HISTOGRAM_HH
