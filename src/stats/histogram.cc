#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "base/contracts.hh"
#include "base/logging.hh"

namespace bighouse {

#ifdef BIGHOUSE_AUDIT
namespace {

/** Audit helper: bin counts + under/overflow must reconcile with total. */
std::uint64_t
reconcileTotal(const std::vector<std::uint64_t>& counts,
               std::uint64_t underflow, std::uint64_t overflow)
{
    std::uint64_t sum = underflow + overflow;
    for (std::uint64_t c : counts)
        sum += c;
    return sum;
}

} // namespace
#endif

std::string
BinScheme::serialize() const
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "binscheme " << lo << " " << hi << " " << bins;
    return oss.str();
}

BinScheme
BinScheme::deserialize(const std::string& text)
{
    std::istringstream iss(text);
    std::string tag;
    BinScheme scheme;
    iss >> tag >> scheme.lo >> scheme.hi >> scheme.bins;
    bool ok = static_cast<bool>(iss) && tag == "binscheme"
              && scheme.bins > 0 && scheme.hi > scheme.lo
              && std::isfinite(scheme.lo) && std::isfinite(scheme.hi);
    if (ok) {
        // Reject trailing garbage: a truncated or corrupted master->slave
        // broadcast (or checkpoint line) must fail loudly, not merge a
        // scheme that happens to have a parsable prefix.
        iss >> std::ws;
        ok = iss.eof();
    }
    if (!ok)
        fatal("malformed BinScheme: '", text, "'");
    return scheme;
}

BinScheme
suggestBinScheme(std::span<const double> calibration, std::size_t bins,
                 double expand)
{
    if (calibration.empty())
        fatal("suggestBinScheme: empty calibration sample");
    if (bins == 0)
        fatal("suggestBinScheme: need at least one bin");
    const auto [minIt, maxIt] =
        std::minmax_element(calibration.begin(), calibration.end());
    double lo = *minIt;
    double hi = *maxIt;
    double spread = hi - lo;
    if (spread <= 0.0)
        spread = std::max(std::abs(lo), 1e-9);
    lo = std::max(0.0, lo - expand * spread);
    hi = hi + expand * spread;
    return BinScheme{lo, hi, bins};
}

Histogram::Histogram(BinScheme scheme)
    : layout(scheme),
      width(scheme.binWidth()),
      counts(scheme.bins, 0),
      minValue(std::numeric_limits<double>::infinity()),
      maxValue(-std::numeric_limits<double>::infinity())
{
    if (scheme.bins == 0 || scheme.hi <= scheme.lo)
        fatal("Histogram needs bins >= 1 and hi > lo");
}

double
Histogram::quantile(double q) const
{
    BH_REQUIRE(total > 0, "quantile of an empty histogram");
    BH_REQUIRE(q >= 0.0 && q <= 1.0, "quantile needs q in [0,1]");
    if (q == 0.0)
        return minValue;
    if (q == 1.0)
        return maxValue;

    const double target = q * static_cast<double>(total);
    double cumulative = 0.0;

    // Underflow mass: spread uniformly over [minValue, lo).
    if (underflow > 0) {
        const auto uf = static_cast<double>(underflow);
        if (target <= cumulative + uf) {
            const double frac = (target - cumulative) / uf;
            return minValue + frac * (layout.lo - minValue);
        }
        cumulative += uf;
    }

    const double width = layout.binWidth();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const auto mass = static_cast<double>(counts[i]);
        if (target <= cumulative + mass) {
            const double frac = (target - cumulative) / mass;
            return layout.lo + (static_cast<double>(i) + frac) * width;
        }
        cumulative += mass;
    }

    // Overflow mass: spread uniformly over [hi, maxValue].
    if (overflow > 0) {
        const auto of = static_cast<double>(overflow);
        const double frac =
            std::min(1.0, std::max(0.0, (target - cumulative) / of));
        return layout.hi + frac * (maxValue - layout.hi);
    }
    return maxValue;
}

double
Histogram::approximateMean() const
{
    if (total == 0)
        return 0.0;
    double sum = 0.0;
    const double width = layout.binWidth();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double mid = layout.lo + (static_cast<double>(i) + 0.5) * width;
        sum += mid * static_cast<double>(counts[i]);
    }
    if (underflow > 0)
        sum += 0.5 * (minValue + layout.lo) * static_cast<double>(underflow);
    if (overflow > 0)
        sum += 0.5 * (layout.hi + maxValue) * static_cast<double>(overflow);
    return sum / static_cast<double>(total);
}

double
Histogram::cdfAt(double x) const
{
    if (total == 0)
        return 0.0;
    if (x < minValue)
        return 0.0;
    if (x >= maxValue)
        return 1.0;

    double below = 0.0;
    // Underflow mass: uniform over [minValue, lo), mirroring quantile().
    if (x < layout.lo) {
        if (underflow > 0 && layout.lo > minValue) {
            below = static_cast<double>(underflow) * (x - minValue)
                    / (layout.lo - minValue);
        }
        return below / static_cast<double>(total);
    }
    below = static_cast<double>(underflow);
    if (x >= layout.hi) {
        // Overflow mass: uniform over [hi, maxValue].
        for (const std::uint64_t c : counts)
            below += static_cast<double>(c);
        if (overflow > 0 && maxValue > layout.hi) {
            below += static_cast<double>(overflow) * (x - layout.hi)
                     / (maxValue - layout.hi);
        }
        return below / static_cast<double>(total);
    }
    const double width = layout.binWidth();
    auto bin = static_cast<std::size_t>((x - layout.lo) / width);
    if (bin >= counts.size())
        bin = counts.size() - 1;
    for (std::size_t i = 0; i < bin; ++i)
        below += static_cast<double>(counts[i]);
    const double binLo = layout.lo + static_cast<double>(bin) * width;
    below += static_cast<double>(counts[bin]) * (x - binLo) / width;
    return below / static_cast<double>(total);
}

double
Histogram::outOfRangeFraction() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(underflow + overflow)
           / static_cast<double>(total);
}

void
Histogram::merge(const Histogram& other)
{
    // fatal(), not a contract panic: a scheme mismatch is a protocol
    // error a misconfigured slave can cause, and callers/tests rely on
    // the exit(1) user-error path.
    if (!(layout == other.layout)) {
        fatal("Histogram::merge: bin schemes differ (",
              layout.serialize(), " vs ", other.layout.serialize(), ")");
    }
    const std::uint64_t before = total;
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    underflow += other.underflow;
    overflow += other.overflow;
    total += other.total;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
    BH_ENSURE(total >= before && total >= other.total,
              "merged observation count wrapped: ", before, " + ",
              other.total, " -> ", total);
    BH_ENSURE(total == 0 || minValue <= maxValue,
              "merged extremes inverted: min=", minValue,
              " max=", maxValue);
    BH_AUDIT(reconcileTotal(counts, underflow, overflow) == total,
             "bin counts do not reconcile with total after merge");
}

std::string
Histogram::serialize() const
{
    std::ostringstream oss;
    oss.precision(17);
    // iostreams cannot parse "inf"; encode the empty-histogram sentinels
    // as zeros and restore them on load.
    const double minOut = total == 0 ? 0.0 : minValue;
    const double maxOut = total == 0 ? 0.0 : maxValue;
    oss << layout.serialize() << " ; " << total << " " << underflow << " "
        << overflow << " " << minOut << " " << maxOut;
    for (std::uint64_t c : counts)
        oss << " " << c;
    return oss.str();
}

Histogram
Histogram::deserialize(const std::string& text)
{
    const auto sep = text.find(" ; ");
    if (sep == std::string::npos)
        fatal("malformed Histogram serialization");
    Histogram hist(BinScheme::deserialize(text.substr(0, sep)));
    std::istringstream iss(text.substr(sep + 3));
    iss >> hist.total >> hist.underflow >> hist.overflow >> hist.minValue
        >> hist.maxValue;
    for (auto& c : hist.counts)
        iss >> c;
    if (!iss)
        fatal("truncated Histogram serialization");
    iss >> std::ws;
    if (!iss.eof())
        fatal("trailing garbage in Histogram serialization");
    if (hist.total == 0) {
        hist.minValue = std::numeric_limits<double>::infinity();
        hist.maxValue = -std::numeric_limits<double>::infinity();
    }
    return hist;
}

} // namespace bighouse
