/**
 * @file
 * StatsCollection: the set of output metrics observed by one simulation,
 * enforcing the paper's two multi-metric constraints:
 *
 *  1. "the simulation may not progress out of the warm-up phase until Nw
 *     observations have been collected for all output metrics" — the
 *     collection coordinates warm-up globally; metrics only begin
 *     calibrating once every metric is warm.
 *  2. "the simulation may not terminate until all outputs have a
 *     sufficient sample size to reach convergence" — allConverged() is the
 *     simulation's termination condition.
 */

#ifndef BIGHOUSE_STATS_COLLECTION_HH
#define BIGHOUSE_STATS_COLLECTION_HH

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/logging.hh"
#include "stats/metric.hh"

namespace bighouse {

/** Registry and router for a simulation's output metrics. */
class StatsCollection
{
  public:
    /** Dense handle for the hot recording path. */
    using MetricId = std::size_t;

    /**
     * Register a metric. The spec's warmupSamples is managed by the
     * collection (constraint 1): the metric itself starts at calibration
     * once the global warm-up gate opens.
     */
    MetricId addMetric(MetricSpec spec);

    /**
     * Offer an observation for one metric.
     *
     * Inline fast path: once the global warm-up gate is open (the steady
     * state for the whole measured run) this is a bounds check and a
     * direct dispatch into OutputMetric::record()'s inline path — the
     * full record-one-sample chain runs without a single out-of-line
     * call. Warm-up counting is the cold branch.
     */
    void
    record(MetricId id, double x)
    {
        BH_ASSERT(id < metrics.size(), "unknown metric id ", id);
        if (warm) [[likely]] {
            metrics[id]->record(x);
            return;
        }
        recordDuringWarmup(id);
    }

    /**
     * Offer a block of observations for one metric — bit-identical to
     * calling record() per element, including the global warm-up gate
     * opening anywhere inside the block (the observation that opens the
     * gate is discarded, exactly as in the per-sample path; everything
     * after it flows into the metric's bulk fast path).
     */
    void
    recordMany(MetricId id, std::span<const double> xs)
    {
        BH_ASSERT(id < metrics.size(), "unknown metric id ", id);
        if (warm) [[likely]] {
            metrics[id]->recordMany(xs);
            return;
        }
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (warm) {
                metrics[id]->recordMany(xs.subspan(i));
                return;
            }
            recordDuringWarmup(id);
        }
    }

    /** True once every metric has seen its Nw warm-up observations. */
    bool warmedUp() const { return warm; }

    /** Constraint 2: every metric converged. */
    bool allConverged() const;

    /** Coarsest phase across metrics (the "simulation phase"). */
    Phase globalPhase() const;

    std::size_t metricCount() const { return metrics.size(); }

    OutputMetric& metric(MetricId id);
    const OutputMetric& metric(MetricId id) const;

    /** Lookup by name; fatal() when unknown. */
    const OutputMetric& metricByName(std::string_view name) const;
    MetricId idByName(std::string_view name) const;

    /** Snapshot of every metric's estimate. */
    std::vector<MetricEstimate> estimates() const;

    /** Aligned text report of all estimates. */
    std::string report() const;

  private:
    /** Count one warm-up observation for `id`; opens the gate when every
     * metric has reached its target (cold path of record()). */
    void recordDuringWarmup(MetricId id);

    std::vector<std::unique_ptr<OutputMetric>> metrics;
    std::vector<std::uint64_t> warmupTarget;
    std::vector<std::uint64_t> warmupSeen;
    /// Metrics still short of their warm-up target; warm iff zero. A
    /// counter instead of a per-observation scan over all metrics.
    std::size_t coldMetrics = 0;
    bool warm = false;
};

/** Format a vector of estimates as an aligned table (used by report()). */
std::string formatEstimates(const std::vector<MetricEstimate>& estimates);

} // namespace bighouse

#endif // BIGHOUSE_STATS_COLLECTION_HH
