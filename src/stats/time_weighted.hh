/**
 * @file
 * TimeWeightedStat — the windowed-timeline accumulator behind
 * src/obs/timeline.hh.
 *
 * A Histogram summarizes a *sample sequence* (every observation counts
 * once); a timeline window instead summarizes a *piecewise-constant
 * signal* — queue depth, busy cores, servers up — where each value must
 * count in proportion to how long the system held it. TimeWeightedStat
 * is the weighted analogue: addWeighted(value, weight) accumulates
 * `weight` (simulated seconds for gauges, 1.0 for per-task samples)
 * into exact weighted moments (total weight, weighted sum, min, max)
 * plus a fixed 64-bin log2 quantile sketch, so every window carries
 * mean/min/max and interpolated quantiles at O(1) memory regardless of
 * how many transitions it covers.
 *
 * The sketch follows Histogram's piecewise-uniform quantile model: bin
 * b holds [2^(b-32), 2^(b-31)) — the exponent range is shifted so
 * sub-second latencies (the dominant sampled signal) spread across
 * bins instead of collapsing into one — with bin 0 absorbing
 * [0, 2^-31) and bin 63 absorbing [2^31, inf). Quantiles interpolate
 * linearly inside the containing bin and clamp to the exact [min, max]
 * envelope. Merging two stats sums bins and moments; under
 * BIGHOUSE_AUDIT the merge reconciles the bin mass against the total
 * weight (the timeline's analogue of the quorum-merge weight-
 * conservation contract).
 *
 * The observe(t, v) form layers a gauge clock on top: out-of-order
 * timestamps violate a precondition (time never goes backwards in a
 * simulation), and zero-width intervals never reach the sketch —
 * addWeighted itself rejects weight <= 0.
 */

#ifndef BIGHOUSE_STATS_TIME_WEIGHTED_HH
#define BIGHOUSE_STATS_TIME_WEIGHTED_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "base/contracts.hh"
#include "base/time.hh"

namespace bighouse {

/** Weighted moments + log2 quantile sketch of a non-negative signal. */
class TimeWeightedStat
{
  public:
    /// Sketch resolution: bin b = [2^(b-32), 2^(b-31)); bin 0 absorbs
    /// [0, 2^-31), bin 63 absorbs everything >= 2^31. Covers ~0.5 ns
    /// latencies up to ~68 simulated years at one-octave resolution.
    static constexpr std::size_t kBins = 64;
    /// Exponent shift: value exponent e lands in bin e + kExpOffset.
    static constexpr int kExpOffset = 32;

    /**
     * Accumulate `weight` units of the signal holding `value`. Weight
     * must be strictly positive (a zero-width interval carries no
     * information and almost always indicates a caller bug) and value
     * non-negative (the tracked signals are counts and durations).
     */
    void addWeighted(double value, double weight)
    {
        BH_REQUIRE(weight > 0.0 && weight - weight == 0.0,
                   "weight must be positive and finite");
        BH_REQUIRE(value >= 0.0 && value - value == 0.0,
                   "value must be non-negative and finite");
        if (observations == 0) {
            minValue = value;
            maxValue = value;
        } else if (value < minValue) {
            minValue = value;
        } else if (value > maxValue) {
            maxValue = value;
        }
        ++observations;
        weightTotal += weight;
        weightedSum += value * weight;
        bins[binFor(value)] += weight;
    }

    /**
     * Gauge form: the signal takes `value` at time `t`. The first call
     * anchors the clock; each later call charges the *previous* value
     * for the elapsed interval. Timestamps must be non-decreasing —
     * simulated time never runs backwards.
     */
    void observe(Time t, double value);

    /** Charge the open gauge interval up to `t` (call before reading). */
    void settle(Time t);

    bool empty() const { return observations == 0; }
    std::uint64_t count() const { return observations; }
    double totalWeight() const { return weightTotal; }
    double mean() const
    {
        return weightTotal > 0.0 ? weightedSum / weightTotal : 0.0;
    }
    double min() const { return observations == 0 ? 0.0 : minValue; }
    double max() const { return observations == 0 ? 0.0 : maxValue; }

    /**
     * Weighted quantile from the sketch: piecewise-uniform inside the
     * containing bin, clamped to the exact observed [min, max].
     */
    double quantile(double q) const;

    /** Fold `other` into this stat (gauge clocks are not merged). */
    void merge(const TimeWeightedStat& other);

    /**
     * Compact text form (count, moments, trailing-zero-trimmed bins).
     * Byte-stable: the same accumulation sequence always serializes to
     * the same string, so result files diff cleanly across reruns.
     */
    std::string serialize() const;

    /** Inverse of serialize(); fatal() on malformed text. */
    static TimeWeightedStat deserialize(const std::string& text);

    /** Sketch-bin index for a value (exposed for tests). */
    static std::size_t binFor(double value)
    {
        if (value <= 0.0)
            return 0;
        // floor(log2(value)) via the IEEE-754 exponent field: exact,
        // branch-light, and identical across platforms. Subnormals read
        // as exponent -1023 and clamp into the floor bin with zero.
        const auto bits = std::bit_cast<std::uint64_t>(value);
        const int exponent =
            static_cast<int>((bits >> 52) & 0x7ff) - 1023;
        const int index = exponent + kExpOffset;
        if (index < 0)
            return 0;
        return index < static_cast<int>(kBins)
                   ? static_cast<std::size_t>(index)
                   : kBins - 1;
    }

    /** Lower edge of a sketch bin. */
    static double binLo(std::size_t bin);
    /** Upper edge of a sketch bin. */
    static double binHi(std::size_t bin);

  private:
    double sketchWeight() const;

    std::array<double, kBins> bins{};
    std::uint64_t observations = 0;
    double weightTotal = 0.0;
    double weightedSum = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
    /// Gauge clock (observe/settle only; never serialized or merged).
    bool tracking = false;
    Time lastTime = 0.0;
    double currentValue = 0.0;
};

} // namespace bighouse

#endif // BIGHOUSE_STATS_TIME_WEIGHTED_HH
