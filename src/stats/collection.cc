#include "stats/collection.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace bighouse {

StatsCollection::MetricId
StatsCollection::addMetric(MetricSpec spec)
{
    for (const auto& existing : metrics) {
        if (existing->specification().name == spec.name)
            fatal("duplicate metric name '", spec.name, "'");
    }
    warmupTarget.push_back(spec.warmupSamples);
    warmupSeen.push_back(0);
    if (spec.warmupSamples > 0)
        ++coldMetrics;
    // The collection owns warm-up (constraint 1); the metric starts at
    // calibration as soon as observations reach it.
    spec.warmupSamples = 0;
    metrics.push_back(std::make_unique<OutputMetric>(std::move(spec)));
    warm = coldMetrics == 0;
    return metrics.size() - 1;
}

void
StatsCollection::recordDuringWarmup(MetricId id)
{
    // Crossing the target exactly once retires this metric from the cold
    // set; observations past the target (while siblings warm up) only
    // bump the counter.
    if (++warmupSeen[id] == warmupTarget[id] && --coldMetrics == 0)
        warm = true;
}

bool
StatsCollection::allConverged() const
{
    if (metrics.empty())
        return false;
    return std::all_of(metrics.begin(), metrics.end(),
                       [](const auto& m) { return m->converged(); });
}

Phase
StatsCollection::globalPhase() const
{
    if (!warm)
        return Phase::Warmup;
    Phase coarsest = Phase::Converged;
    for (const auto& m : metrics) {
        if (static_cast<int>(m->phase()) < static_cast<int>(coarsest))
            coarsest = m->phase();
    }
    return coarsest;
}

OutputMetric&
StatsCollection::metric(MetricId id)
{
    BH_ASSERT(id < metrics.size(), "unknown metric id ", id);
    return *metrics[id];
}

const OutputMetric&
StatsCollection::metric(MetricId id) const
{
    BH_ASSERT(id < metrics.size(), "unknown metric id ", id);
    return *metrics[id];
}

StatsCollection::MetricId
StatsCollection::idByName(std::string_view name) const
{
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        if (metrics[i]->specification().name == name)
            return i;
    }
    fatal("unknown metric '", std::string(name), "'");
}

const OutputMetric&
StatsCollection::metricByName(std::string_view name) const
{
    return *metrics[idByName(name)];
}

std::vector<MetricEstimate>
StatsCollection::estimates() const
{
    std::vector<MetricEstimate> out;
    out.reserve(metrics.size());
    for (const auto& m : metrics)
        out.push_back(m->estimate());
    return out;
}

std::string
StatsCollection::report() const
{
    return formatEstimates(estimates());
}

std::string
formatEstimates(const std::vector<MetricEstimate>& estimates)
{
    std::ostringstream oss;
    char line[256];
    std::snprintf(line, sizeof(line), "%-24s %-12s %10s %6s %14s %14s",
                  "metric", "phase", "samples", "lag", "mean",
                  "ci-halfwidth");
    oss << line << "\n";
    for (const auto& est : estimates) {
        std::snprintf(line, sizeof(line),
                      "%-24s %-12s %10llu %6zu %14.6g %14.6g",
                      est.name.c_str(), phaseName(est.phase),
                      static_cast<unsigned long long>(est.accepted),
                      est.lag, est.mean, est.meanHalfWidth);
        oss << line << "\n";
        for (const QuantileEstimate& qe : est.quantiles) {
            std::snprintf(line, sizeof(line),
                          "    p%-5.4g %49s %14.6g [%.6g, %.6g]",
                          qe.q * 100.0, "", qe.value, qe.lower, qe.upper);
            oss << line << "\n";
        }
    }
    return oss.str();
}

} // namespace bighouse
