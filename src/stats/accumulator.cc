#include "stats/accumulator.hh"

#include <algorithm>
#include <cmath>

namespace bighouse {

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::cv() const
{
    return meanValue == 0.0 ? 0.0 : stddev() / meanValue;
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    // Chan et al. pairwise combination.
    const double delta = other.meanValue - meanValue;
    const auto na = static_cast<double>(n);
    const auto nb = static_cast<double>(other.n);
    const double total = na + nb;
    meanValue += delta * nb / total;
    m2 += other.m2 + delta * delta * na * nb / total;
    n += other.n;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

} // namespace bighouse
