#include "stats/accumulator.hh"

#include <algorithm>
#include <cmath>

#include "base/contracts.hh"

namespace bighouse {

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::cv() const
{
    return meanValue == 0.0 ? 0.0 : stddev() / meanValue;
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    // Chan et al. pairwise combination.
    const double delta = other.meanValue - meanValue;
    const auto na = static_cast<double>(n);
    const auto nb = static_cast<double>(other.n);
    const double total = na + nb;
    meanValue += delta * nb / total;
    m2 += other.m2 + delta * delta * na * nb / total;
    n += other.n;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
    // The sum of squared deviations can only stay non-negative if both
    // inputs were well-formed; a negative m2 would silently produce NaN
    // standard deviations and wreck every convergence decision downstream.
    BH_ENSURE(m2 >= 0.0, "negative sum of squared deviations: ", m2);
    BH_ENSURE(minValue <= maxValue, "extremes inverted after merge");
}

Accumulator
Accumulator::restore(std::uint64_t count, double mean, double variance,
                     double min, double max)
{
    Accumulator acc;
    if (count == 0)
        return acc;
    BH_REQUIRE(variance >= 0.0,
               "restore with negative variance: ", variance);
    BH_REQUIRE(min <= max, "restore with min ", min, " > max ", max);
    BH_REQUIRE(std::isfinite(mean), "restore with non-finite mean");
    acc.n = count;
    acc.meanValue = mean;
    acc.m2 = count < 2 ? 0.0
                       : variance * static_cast<double>(count - 1);
    acc.minValue = min;
    acc.maxValue = max;
    return acc;
}

} // namespace bighouse
