/**
 * @file
 * Confidence-interval and required-sample-size arithmetic — Eqs. 1-3 of
 * the paper.
 *
 * Accuracy is the normalized half-width E = epsilon / X-bar (Eq. 1), so a
 * mean estimate needs
 *     Nm = (z * sigma / epsilon)^2 = (z * Cv / E)^2          (Eq. 2)
 * and a q-quantile estimate, with E interpreted in probability units as in
 * Chen & Kelton,
 *     Nq = z^2 * q * (1 - q) / E^2                           (Eq. 3)
 * The convergence requirement is N >= max(Nm, Nq).
 */

#ifndef BIGHOUSE_STATS_CONFIDENCE_HH
#define BIGHOUSE_STATS_CONFIDENCE_HH

#include <cstdint>

namespace bighouse {

/** Target accuracy/confidence for one output metric. */
struct ConfidenceSpec
{
    double accuracy = 0.05;    ///< E: relative half-width target
    double confidence = 0.95;  ///< 1 - alpha

    /** The critical value z_{1-alpha/2}. */
    double critical() const;
};

/**
 * Sample size for a mean estimate (Eq. 2) given the current mean and
 * standard-deviation estimates. Returns at least `floor_` so early noisy
 * estimates cannot terminate a run instantly.
 */
std::uint64_t requiredSamplesMean(double z, double mean, double stddev,
                                  double accuracy,
                                  std::uint64_t floor_ = 100);

/** Sample size for a q-quantile estimate (Eq. 3). */
std::uint64_t requiredSamplesQuantile(double z, double q, double accuracy,
                                      std::uint64_t floor_ = 100);

/** Symmetric confidence interval for a mean from n observations. */
struct Interval
{
    double center = 0.0;
    double halfWidth = 0.0;

    double lower() const { return center - halfWidth; }
    double upper() const { return center + halfWidth; }
};

/** CI for the mean via the central limit theorem. */
Interval meanInterval(double z, double mean, double stddev,
                      std::uint64_t n);

} // namespace bighouse

#endif // BIGHOUSE_STATS_CONFIDENCE_HH
