/**
 * @file
 * The runs-up independence test (Knuth, TAOCP vol. 2, §3.3.2G) and the
 * lag-spacing search built on it, following Chen & Kelton (2003) as the
 * paper describes: "if observations are spaced sufficiently apart — by
 * keeping only every l-th sample — they can be treated as independent.
 * Determining this minimum spacing, l, is accomplished with the runs-up
 * test."
 *
 * For an i.i.d. continuous sequence the statistic V is approximately
 * chi-square with 6 degrees of freedom; positive autocorrelation stretches
 * ascending runs and inflates V, so the test rejects when V exceeds the
 * (1 - significance) chi-square quantile.
 */

#ifndef BIGHOUSE_STATS_RUNS_TEST_HH
#define BIGHOUSE_STATS_RUNS_TEST_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace bighouse {

/** Counts of ascending runs by length (index 5 = runs of length >= 6). */
std::array<std::uint64_t, 6> countRunsUp(std::span<const double> xs);

/**
 * Knuth's runs-up chi-square statistic V for the sequence.
 * @pre xs.size() >= 4000 for the chi-square approximation to hold
 *      (not enforced; callers below enforce their own minima).
 */
double runsUpStatistic(std::span<const double> xs);

/** True when the sequence passes at the given significance level. */
bool runsUpTestPasses(std::span<const double> xs,
                      double significance = 0.05);

/** Outcome of the calibration-phase lag search. */
struct LagResult
{
    std::size_t lag = 1;        ///< keep every lag-th observation
    bool passed = false;        ///< whether the test passed at that lag
    double statistic = 0.0;     ///< V at the chosen lag
};

/**
 * Find the smallest lag l in [1, maxLag] whose l-spaced subsequence of
 * `calibration` passes the runs-up test. The subsequence must retain at
 * least `minPoints` observations for the test to be meaningful; if no lag
 * passes (or subsequences get too short), the largest testable lag is
 * returned with passed = false and the caller may warn.
 */
LagResult findLag(std::span<const double> calibration,
                  std::size_t maxLag = 64,
                  double significance = 0.05,
                  std::size_t minPoints = 500);

} // namespace bighouse

#endif // BIGHOUSE_STATS_RUNS_TEST_HH
