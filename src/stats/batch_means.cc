#include "stats/batch_means.hh"

#include "base/logging.hh"

namespace bighouse {

BatchMeans::BatchMeans(std::uint64_t batchSize)
    : size(batchSize)
{
    if (batchSize == 0)
        fatal("BatchMeans batch size must be >= 1");
}

void
BatchMeans::add(double x)
{
    ++consumed;
    batchSum += x;
    if (++inBatch == size) {
        means.add(batchSum / static_cast<double>(size));
        inBatch = 0;
        batchSum = 0.0;
    }
}

} // namespace bighouse
