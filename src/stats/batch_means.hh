/**
 * @file
 * Batch means: the classical alternative to lag spacing for drawing
 * (approximately) independent observations from an autocorrelated output
 * sequence. Consecutive observations are grouped into fixed-size batches;
 * batch averages are nearly independent once the batch length exceeds the
 * correlation time, and CI machinery treats the batch means as the i.i.d.
 * sample.
 *
 * Included as a design-choice comparison (see
 * bench/ablation_batch_means): lag spacing *discards* l-1 of every l
 * observations, batch means keeps them all but yields n/b observations;
 * the ablation measures which delivers honest coverage per simulated
 * event.
 */

#ifndef BIGHOUSE_STATS_BATCH_MEANS_HH
#define BIGHOUSE_STATS_BATCH_MEANS_HH

#include <cstdint>

#include "stats/accumulator.hh"

namespace bighouse {

/** Groups a stream into fixed batches and accumulates the batch means. */
class BatchMeans
{
  public:
    /** @param batchSize observations per batch (>= 1) */
    explicit BatchMeans(std::uint64_t batchSize);

    /** Offer one raw observation. */
    void add(double x);

    /** Completed batches so far (the effective sample size). */
    std::uint64_t batches() const { return means.count(); }

    /** Raw observations consumed (including the unfinished batch). */
    std::uint64_t observations() const { return consumed; }

    /** Mean over completed batch means (== overall mean of full batches). */
    double mean() const { return means.mean(); }

    /** Variance *of the batch means* — the CI-relevant variance. */
    double varianceOfMeans() const { return means.variance(); }

    /** Stddev of the batch means. */
    double stddevOfMeans() const { return means.stddev(); }

    /** Accumulator over the batch means (for merging/inspection). */
    const Accumulator& meansAccumulator() const { return means; }

    std::uint64_t batchSize() const { return size; }

  private:
    std::uint64_t size;
    std::uint64_t consumed = 0;
    std::uint64_t inBatch = 0;
    double batchSum = 0.0;
    Accumulator means;
};

} // namespace bighouse

#endif // BIGHOUSE_STATS_BATCH_MEANS_HH
