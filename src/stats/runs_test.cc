#include "stats/runs_test.hh"

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/math_utils.hh"

namespace bighouse {

namespace {

// Knuth's covariance coefficients for the runs-up statistic
// (TAOCP vol. 2, 3rd ed., §3.3.2, eq. (14)).
constexpr double kA[6][6] = {
    {4529.4, 9044.9, 13568.0, 18091.0, 22615.0, 27892.0},
    {9044.9, 18097.0, 27139.0, 36187.0, 45234.0, 55789.0},
    {13568.0, 27139.0, 40721.0, 54281.0, 67852.0, 83685.0},
    {18091.0, 36187.0, 54281.0, 72414.0, 90470.0, 111580.0},
    {22615.0, 45234.0, 67852.0, 90470.0, 113262.0, 139476.0},
    {27892.0, 55789.0, 83685.0, 111580.0, 139476.0, 172860.0},
};

constexpr double kB[6] = {
    1.0 / 6.0, 5.0 / 24.0, 11.0 / 120.0,
    19.0 / 720.0, 29.0 / 5040.0, 1.0 / 840.0,
};

} // namespace

std::array<std::uint64_t, 6>
countRunsUp(std::span<const double> xs)
{
    std::array<std::uint64_t, 6> counts{};
    if (xs.empty())
        return counts;
    std::size_t runLength = 1;
    for (std::size_t i = 1; i < xs.size(); ++i) {
        if (xs[i] >= xs[i - 1]) {
            ++runLength;
        } else {
            counts[std::min<std::size_t>(runLength, 6) - 1] += 1;
            runLength = 1;
        }
    }
    counts[std::min<std::size_t>(runLength, 6) - 1] += 1;
    return counts;
}

double
runsUpStatistic(std::span<const double> xs)
{
    BH_ASSERT(xs.size() >= 12, "runs-up statistic needs a longer sequence");
    const auto counts = countRunsUp(xs);
    const auto n = static_cast<double>(xs.size());
    double v = 0.0;
    for (int i = 0; i < 6; ++i) {
        const double di = static_cast<double>(counts[i]) - n * kB[i];
        for (int j = 0; j < 6; ++j) {
            const double dj = static_cast<double>(counts[j]) - n * kB[j];
            v += kA[i][j] * di * dj;
        }
    }
    return v / n;
}

bool
runsUpTestPasses(std::span<const double> xs, double significance)
{
    const double critical = chiSquareQuantile(1.0 - significance, 6);
    return runsUpStatistic(xs) <= critical;
}

LagResult
findLag(std::span<const double> calibration, std::size_t maxLag,
        double significance, std::size_t minPoints)
{
    BH_ASSERT(minPoints >= 12, "minPoints too small for the runs-up test");
    if (calibration.size() < minPoints)
        fatal("calibration sample too small for lag search: ",
              calibration.size(), " < ", minPoints);

    LagResult best;
    std::vector<double> spaced;
    for (std::size_t lag = 1; lag <= maxLag; ++lag) {
        const std::size_t points = calibration.size() / lag;
        if (points < minPoints)
            break;
        spaced.clear();
        spaced.reserve(points);
        for (std::size_t i = lag - 1; i < calibration.size(); i += lag)
            spaced.push_back(calibration[i]);
        const double v = runsUpStatistic(spaced);
        best = LagResult{lag, false, v};
        if (v <= chiSquareQuantile(1.0 - significance, 6)) {
            best.passed = true;
            return best;
        }
    }
    return best;
}

} // namespace bighouse
