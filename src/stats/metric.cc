#include "stats/metric.hh"

#include <algorithm>
#include <cmath>

#include "base/contracts.hh"
#include "base/logging.hh"
#include "stats/runs_test.hh"

namespace bighouse {

const char*
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Warmup: return "warmup";
      case Phase::Calibration: return "calibration";
      case Phase::Measurement: return "measurement";
      case Phase::Converged: return "converged";
    }
    return "unknown";
}

OutputMetric::OutputMetric(MetricSpec s)
    : spec(std::move(s)),
      currentPhase(spec.warmupSamples > 0 ? Phase::Warmup
                                          : Phase::Calibration),
      criticalZ(spec.target.critical())
{
    if (spec.calibrationSamples < 600) {
        fatal("metric '", spec.name, "': calibrationSamples must be >= 600 "
              "for the runs-up test, got ", spec.calibrationSamples);
    }
    for (double q : spec.quantiles) {
        if (q <= 0.0 || q >= 1.0)
            fatal("metric '", spec.name, "': quantile ", q,
                  " outside (0,1)");
    }
    calibrationBuffer.reserve(spec.calibrationSamples);
    calibrationTarget = spec.calibrationSamples;
}

void
OutputMetric::adoptBinScheme(const BinScheme& scheme)
{
    BH_REQUIRE(!hist.has_value(),
               "adoptBinScheme after calibration completed");
    externalScheme = scheme;
}

void
OutputMetric::recordPreMeasurement(double x)
{
    switch (currentPhase) {
      case Phase::Warmup:
        if (++warmupSeen >= spec.warmupSamples)
            currentPhase = Phase::Calibration;
        return;
      case Phase::Calibration:
        calibrationBuffer.push_back(x);
        if (calibrationBuffer.size() >= calibrationTarget)
            completeCalibration();
        return;
      case Phase::Measurement:
      case Phase::Converged:
        // Unreachable: record() routes these phases inline.
        return;
    }
}

void
OutputMetric::completeCalibration()
{
    // Degenerate stream: a (near-)constant metric has nothing for the
    // runs-up test to measure (one endless ascending run of ties), and
    // independence is moot — accept lag 1 directly.
    const auto [minIt, maxIt] = std::minmax_element(
        calibrationBuffer.begin(), calibrationBuffer.end());
    if (*maxIt - *minIt
        <= 1e-12 * std::max(1.0, std::abs(*maxIt))) {
        lagSpacing = 1;
        lagPassed = true;
        const BinScheme degenerate =
            externalScheme ? *externalScheme
                           : suggestBinScheme(calibrationBuffer,
                                              spec.histogramBins);
        hist.emplace(degenerate);
        calibrationBuffer.clear();
        calibrationBuffer.shrink_to_fit();
        currentPhase = Phase::Measurement;
        return;
    }

    const LagResult result =
        findLag(calibrationBuffer, spec.maxLag, 0.05,
                std::min<std::size_t>(500, spec.calibrationSamples / 8));
    lagSpacing = result.lag;
    lagPassed = result.passed;
    if (!result.passed) {
        // The buffer can only test lags up to size/minPoints; grow it
        // (sequential calibration) before settling for the best lag.
        // Growing is pointless once every lag up to maxLag is already
        // testable — then the data is simply too correlated at maxLag.
        const std::size_t minPoints =
            std::min<std::size_t>(500, spec.calibrationSamples / 8);
        const bool allLagsTestable =
            calibrationBuffer.size() / minPoints >= spec.maxLag;
        const std::size_t ceiling =
            spec.calibrationSamples * spec.maxCalibrationFactor;
        if (!allLagsTestable && calibrationBuffer.size() < ceiling) {
            calibrationTarget =
                std::min<std::size_t>(calibrationBuffer.size() * 2,
                                      ceiling);
            return;  // stay in Calibration, keep collecting
        }
        warn("metric '", spec.name, "': runs-up test failed up to lag ",
             result.lag, " (V=", result.statistic, ") after ",
             calibrationBuffer.size(),
             " calibration observations; proceeding with the largest "
             "testable lag");
    }
    const BinScheme scheme =
        externalScheme ? *externalScheme
                       : suggestBinScheme(calibrationBuffer,
                                          spec.histogramBins);
    hist.emplace(scheme);
    calibrationBuffer.clear();
    calibrationBuffer.shrink_to_fit();
    currentPhase = Phase::Measurement;
}

std::uint64_t
OutputMetric::requiredSamples() const
{
    std::uint64_t required = requiredSamplesMean(
        criticalZ, accumulator.mean(), accumulator.stddev(),
        spec.target.accuracy);
    for (double q : spec.quantiles) {
        required = std::max(required,
                            requiredSamplesQuantile(criticalZ, q,
                                                    spec.target.accuracy));
    }
    return required;
}

bool
OutputMetric::evaluateConvergence()
{
    if (currentPhase == Phase::Converged)
        return true;
    if (currentPhase != Phase::Measurement || accumulator.count() == 0)
        return false;
    if (accumulator.count() >= requiredSamples()) {
        currentPhase = Phase::Converged;
        return true;
    }
    return false;
}

void
OutputMetric::absorb(const OutputMetric& other)
{
    BH_REQUIRE(hist.has_value() && other.hist.has_value(),
               "absorb before calibration completed");
    const std::uint64_t before = accumulator.count();
    accumulator.merge(other.accumulator);
    hist->merge(*other.hist);
    offered += other.offered;
    BH_ENSURE(accumulator.count() == before + other.accumulator.count(),
              "absorb lost sample weight");
}

void
OutputMetric::absorbSample(const Accumulator& sample,
                           const Histogram& sampleHist)
{
    BH_REQUIRE(hist.has_value(),
               "absorbSample before calibration completed");
    const std::uint64_t before = accumulator.count();
    accumulator.merge(sample);
    hist->merge(sampleHist);
    offered += sample.count();
    BH_ENSURE(accumulator.count() == before + sample.count(),
              "absorbSample lost sample weight");
}

const Histogram&
OutputMetric::histogram() const
{
    BH_REQUIRE(hist.has_value(), "histogram requested before calibration");
    return *hist;
}

MetricEstimate
OutputMetric::estimate() const
{
    MetricEstimate est;
    est.name = spec.name;
    est.phase = currentPhase;
    est.converged = currentPhase == Phase::Converged;
    est.accepted = accumulator.count();
    est.offered = offered;
    est.lag = hist.has_value() ? lagSpacing : 0;
    est.mean = accumulator.mean();
    est.stddev = accumulator.stddev();
    if (accumulator.count() > 0) {
        est.required = requiredSamples();
        est.min = accumulator.min();
        est.max = accumulator.max();
        const Interval ci = meanInterval(criticalZ, accumulator.mean(),
                                         accumulator.stddev(),
                                         accumulator.count());
        est.meanHalfWidth = ci.halfWidth;
        est.relativeHalfWidth =
            est.mean == 0.0 ? 0.0 : ci.halfWidth / std::abs(est.mean);
    }
    if (hist.has_value() && hist->count() > 0) {
        est.quantiles.reserve(spec.quantiles.size());
        const auto n = static_cast<double>(hist->count());
        for (double q : spec.quantiles) {
            QuantileEstimate qe;
            qe.q = q;
            qe.value = hist->quantile(q);
            // Binomial order-statistic bound in probability space.
            const double delta =
                criticalZ * std::sqrt(q * (1.0 - q) / n);
            qe.lower = hist->quantile(std::max(0.0, q - delta));
            qe.upper = hist->quantile(std::min(1.0, q + delta));
            est.quantiles.push_back(qe);
        }
    }
    return est;
}

} // namespace bighouse
