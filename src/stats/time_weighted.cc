#include "stats/time_weighted.hh"

#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace bighouse {

void
TimeWeightedStat::observe(Time t, double value)
{
    if (!tracking) {
        tracking = true;
        lastTime = t;
        currentValue = value;
        return;
    }
    BH_REQUIRE(t >= lastTime, "gauge observation out of order (", t,
               " after ", lastTime, ")");
    if (t > lastTime)
        addWeighted(currentValue, t - lastTime);
    lastTime = t;
    currentValue = value;
}

void
TimeWeightedStat::settle(Time t)
{
    BH_REQUIRE(tracking, "settle() before the first observe()");
    BH_REQUIRE(t >= lastTime, "gauge settle out of order (", t, " after ",
               lastTime, ")");
    if (t > lastTime)
        addWeighted(currentValue, t - lastTime);
    lastTime = t;
}

double
TimeWeightedStat::binLo(std::size_t bin)
{
    BH_REQUIRE(bin < kBins, "bin ", bin, " out of range");
    return bin == 0 ? 0.0
                    : std::ldexp(1.0, static_cast<int>(bin) - kExpOffset);
}

double
TimeWeightedStat::binHi(std::size_t bin)
{
    BH_REQUIRE(bin < kBins, "bin ", bin, " out of range");
    return std::ldexp(1.0, static_cast<int>(bin) + 1 - kExpOffset);
}

double
TimeWeightedStat::sketchWeight() const
{
    double sum = 0.0;
    for (double w : bins)
        sum += w;
    return sum;
}

double
TimeWeightedStat::quantile(double q) const
{
    BH_REQUIRE(q >= 0.0 && q <= 1.0, "quantile ", q, " outside [0, 1]");
    if (observations == 0)
        return 0.0;
    // Walk the sketch to the bin containing the target mass, then
    // interpolate piecewise-uniformly inside it — the same model
    // Histogram::quantile uses, on log2 bins.
    const double target = q * sketchWeight();
    double below = 0.0;
    for (std::size_t b = 0; b < kBins; ++b) {
        if (bins[b] <= 0.0)
            continue;
        if (below + bins[b] >= target) {
            const double lo = binLo(b);
            const double hi = binHi(b);
            const double frac = (target - below) / bins[b];
            const double value = lo + (hi - lo) * frac;
            // The exact envelope beats the bin edges: a window whose
            // signal never left 3 must report every quantile as 3.
            return std::min(std::max(value, minValue), maxValue);
        }
        below += bins[b];
    }
    return maxValue;
}

void
TimeWeightedStat::merge(const TimeWeightedStat& other)
{
    if (other.observations == 0)
        return;
    if (observations == 0) {
        minValue = other.minValue;
        maxValue = other.maxValue;
    } else {
        minValue = std::min(minValue, other.minValue);
        maxValue = std::max(maxValue, other.maxValue);
    }
    observations += other.observations;
    weightTotal += other.weightTotal;
    weightedSum += other.weightedSum;
    for (std::size_t b = 0; b < kBins; ++b)
        bins[b] += other.bins[b];
    // Weight conservation: the sketch must account for exactly the
    // weight the moments claim (modulo float-summation noise).
    BH_AUDIT(std::abs(sketchWeight() - weightTotal)
                 <= 1e-9 * (1.0 + weightTotal),
             "merge lost weight: sketch ", sketchWeight(), " vs total ",
             weightTotal);
}

std::string
TimeWeightedStat::serialize() const
{
    std::ostringstream oss;
    oss.precision(17);
    std::size_t used = kBins;
    while (used > 0 && bins[used - 1] == 0.0)
        --used;
    oss << "twstat-v1 " << observations << " " << weightTotal << " "
        << weightedSum << " " << min() << " " << max() << " " << used;
    for (std::size_t b = 0; b < used; ++b)
        oss << " " << bins[b];
    return oss.str();
}

TimeWeightedStat
TimeWeightedStat::deserialize(const std::string& text)
{
    std::istringstream iss(text);
    std::string tag;
    TimeWeightedStat stat;
    std::size_t used = 0;
    if (!(iss >> tag >> stat.observations >> stat.weightTotal
          >> stat.weightedSum >> stat.minValue >> stat.maxValue >> used)
        || tag != "twstat-v1" || used > kBins) {
        fatal("malformed TimeWeightedStat: ", text);
    }
    for (std::size_t b = 0; b < used; ++b) {
        if (!(iss >> stat.bins[b]))
            fatal("truncated TimeWeightedStat bins: ", text);
    }
    return stat;
}

} // namespace bighouse
