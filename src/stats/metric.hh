/**
 * @file
 * OutputMetric: the per-metric sampling pipeline of Fig. 2.
 *
 * Each output metric progresses through
 *   1. Warm-up      — discard the first Nw observations (cold-start bias),
 *   2. Calibration  — buffer observations; run the runs-up test to choose
 *                     the lag spacing l and fix the histogram bin scheme,
 *   3. Measurement  — keep every l-th observation, feeding the accumulator
 *                     and histogram,
 *   4. Convergence  — the accepted sample reaches max(Nm, Nq) (Eqs. 2-3).
 *
 * Calibration observations are used only for calibration, not estimation:
 * they were taken at unit lag and would violate the independence the
 * convergence formulas assume.
 */

#ifndef BIGHOUSE_STATS_METRIC_HH
#define BIGHOUSE_STATS_METRIC_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stats/accumulator.hh"
#include "stats/confidence.hh"
#include "stats/histogram.hh"

namespace bighouse {

/** Phases of a metric's sampling sequence (paper Fig. 2). */
enum class Phase { Warmup, Calibration, Measurement, Converged };

/** Render a Phase as text. */
const char* phaseName(Phase phase);

/** User-supplied description of one output metric. */
struct MetricSpec
{
    std::string name = "metric";
    /// Nw: observations discarded before calibration. The paper: "no
    /// rigorous method for automatically detecting steady-state is
    /// available and Nw must be explicitly specified by the user."
    std::uint64_t warmupSamples = 1000;
    /// Calibration sample size; 5000 is the figure the paper reports for
    /// the runs-up test.
    std::uint64_t calibrationSamples = 5000;
    ConfidenceSpec target;             ///< E and confidence level
    std::vector<double> quantiles = {0.95};
    std::size_t histogramBins = 10000;
    std::size_t maxLag = 64;
    /// If no lag in [1, maxLag] passes the runs-up test (the buffer can
    /// only test lags up to size/minPoints), calibration keeps collecting
    /// — doubling the buffer up to this multiple of calibrationSamples —
    /// before settling for the best lag found (with a warning).
    std::size_t maxCalibrationFactor = 8;
    /// Convergence is re-evaluated every this many accepted observations.
    std::uint64_t checkInterval = 64;
};

/**
 * One quantile's estimate with a distribution-free confidence interval:
 * the binomial bound q ± z*sqrt(q(1-q)/n) in probability space, mapped
 * through the histogram CDF to value space (Chen & Kelton).
 */
struct QuantileEstimate
{
    double q = 0.0;
    double value = 0.0;
    double lower = 0.0;  ///< CI lower bound (value space)
    double upper = 0.0;  ///< CI upper bound (value space)
};

/** Snapshot of a metric's current estimates. */
struct MetricEstimate
{
    std::string name;
    Phase phase = Phase::Warmup;
    bool converged = false;
    std::uint64_t accepted = 0;     ///< observations in the estimate
    std::uint64_t offered = 0;      ///< total observations seen
    std::size_t lag = 0;            ///< 0 until calibration completes
    std::uint64_t required = 0;     ///< max(Nm, Nq) at this point
    double mean = 0.0;
    double meanHalfWidth = 0.0;     ///< CLT CI half-width
    double relativeHalfWidth = 0.0; ///< achieved E for the mean
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<QuantileEstimate> quantiles;
};

/** The sampling pipeline for one output metric. */
class OutputMetric
{
  public:
    explicit OutputMetric(MetricSpec spec);

    /**
     * Offer one observation; routed according to the current phase.
     *
     * Inline fast path: in the Measurement/Converged steady state (where
     * a converged-length run spends virtually all observations) this is
     * a lag-counter bump, and every lag-th call flows straight into the
     * accumulator and histogram without leaving the header. The cold
     * warm-up/calibration routing lives in recordPreMeasurement().
     */
    void
    record(double x)
    {
        ++offered;
        if (static_cast<int>(currentPhase)
            >= static_cast<int>(Phase::Measurement)) [[likely]] {
            // Keep every lag-th observation; extra post-convergence
            // observations only sharpen the estimate.
            if (++sinceAccepted >= lagSpacing) {
                sinceAccepted = 0;
                acceptObservation(x);
            }
            return;
        }
        recordPreMeasurement(x);
    }

    /**
     * Offer a block of observations — semantically `for (x : xs)
     * record(x)`, bit-identical in every accumulator, histogram, and
     * phase transition, but with the lag filter amortized per block: in
     * the measurement steady state the loop jumps straight from one
     * accepted observation to the next (lag-spacing stride) instead of
     * bumping a counter per sample. The vectorized recurrence backend
     * records whole batches through this path.
     */
    void
    recordMany(std::span<const double> xs)
    {
        std::size_t i = 0;
        const std::size_t n = xs.size();
        // Cold prefix: route per-sample until calibration completes (the
        // phase can flip to Measurement anywhere inside the block).
        while (i < n
               && static_cast<int>(currentPhase)
                      < static_cast<int>(Phase::Measurement)) {
            record(xs[i]);
            ++i;
        }
        if (i == n)
            return;
        offered += n - i;
        while (i < n) {
            // record() accepts when ++sinceAccepted reaches lagSpacing;
            // the next accepted element is therefore `need` samples in.
            const std::uint64_t need = lagSpacing - sinceAccepted;
            if (need > n - i) {
                sinceAccepted += n - i;
                return;
            }
            i += static_cast<std::size_t>(need) - 1;
            sinceAccepted = 0;
            acceptObservation(xs[i]);
            ++i;
        }
    }

    /** Current phase. */
    Phase phase() const { return currentPhase; }

    /** True once the accepted sample satisfies Eqs. 2-3. */
    bool converged() const { return currentPhase == Phase::Converged; }

    /** Lag spacing chosen by calibration (1 before calibration). */
    std::size_t lag() const { return lagSpacing; }

    /** Whether the runs-up test actually passed at lag(). */
    bool lagTestPassed() const { return lagPassed; }

    /**
     * Slave mode (Fig. 3): install the master's bin scheme so the local
     * calibration only determines the lag. Must be called before
     * calibration completes.
     */
    void adoptBinScheme(const BinScheme& scheme);

    /**
     * Slave mode: strip convergence authority — the metric never
     * self-converges; the master decides from aggregate counts.
     */
    void disableSelfConvergence() { selfConvergence = false; }

    /** Merge another metric's measured sample into this one (Fig. 3). */
    void absorb(const OutputMetric& other);

    /**
     * Merge a raw (accumulator, histogram) sample — a checkpointed
     * slave's contribution revived without its OutputMetric. The
     * histogram's bin scheme must match this metric's.
     */
    void absorbSample(const Accumulator& sample, const Histogram& hist);

    /**
     * Re-evaluate convergence from the current (possibly merged) sample;
     * used by the master after absorb(). Promotes the phase to Converged
     * when satisfied.
     */
    bool evaluateConvergence();

    /** Required sample size max(Nm, Nq) given current estimates. */
    std::uint64_t requiredSamples() const;

    /** Observations accepted into the estimate so far. */
    std::uint64_t acceptedCount() const { return accumulator.count(); }

    /** Total observations offered (all phases). */
    std::uint64_t offeredCount() const { return offered; }

    /** Current estimates snapshot. */
    MetricEstimate estimate() const;

    /** The spec this metric was created with. */
    const MetricSpec& specification() const { return spec; }

    /** Measurement histogram; only valid after calibration. */
    const Histogram& histogram() const;

    /** Accumulator over accepted observations. */
    const Accumulator& sampleAccumulator() const { return accumulator; }

  private:
    /** Warm-up and calibration routing (cold; called until measurement). */
    void recordPreMeasurement(double x);
    void completeCalibration();

    /**
     * Fold an accepted observation into the estimate. Inline: together
     * with record() this flattens the whole per-sample chain
     * (lag filter -> Welford update -> histogram bin) into one call-free
     * sequence; only the periodic convergence check leaves the header.
     */
    void
    acceptObservation(double x)
    {
        accumulator.add(x);
        hist->add(x);
        if (currentPhase == Phase::Converged || !selfConvergence)
            return;
        if (++sinceChecked >= spec.checkInterval) {
            sinceChecked = 0;
            evaluateConvergence();
        }
    }

    MetricSpec spec;
    Phase currentPhase;
    std::uint64_t offered = 0;
    std::uint64_t warmupSeen = 0;
    std::vector<double> calibrationBuffer;
    /// Buffer size that triggers the next runs-up attempt; grows when the
    /// test keeps failing (sequential calibration).
    std::size_t calibrationTarget = 0;
    std::size_t lagSpacing = 1;
    bool lagPassed = false;
    std::uint64_t sinceAccepted = 0;
    std::uint64_t sinceChecked = 0;
    bool selfConvergence = true;
    std::optional<BinScheme> externalScheme;
    std::optional<Histogram> hist;
    Accumulator accumulator;
    double criticalZ;
};

} // namespace bighouse

#endif // BIGHOUSE_STATS_METRIC_HH
