#include "stats/confidence.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/math_utils.hh"

namespace bighouse {

double
ConfidenceSpec::critical() const
{
    if (accuracy <= 0.0)
        fatal("ConfidenceSpec accuracy must be > 0, got ", accuracy);
    if (confidence <= 0.0 || confidence >= 1.0)
        fatal("ConfidenceSpec confidence must be in (0,1), got ", confidence);
    return normalCritical(confidence);
}

std::uint64_t
requiredSamplesMean(double z, double mean, double stddev, double accuracy,
                    std::uint64_t floor_)
{
    BH_ASSERT(z > 0 && accuracy > 0, "bad confidence parameters");
    if (mean == 0.0 || stddev == 0.0)
        return floor_;
    // Eq. 2 with epsilon = accuracy * mean.
    const double epsilon = accuracy * std::abs(mean);
    const double n = (z * stddev / epsilon) * (z * stddev / epsilon);
    const double clamped = std::ceil(n);
    if (clamped >= 9.0e18)
        return static_cast<std::uint64_t>(9.0e18);
    const auto required = static_cast<std::uint64_t>(clamped);
    return required < floor_ ? floor_ : required;
}

std::uint64_t
requiredSamplesQuantile(double z, double q, double accuracy,
                        std::uint64_t floor_)
{
    BH_ASSERT(z > 0 && accuracy > 0, "bad confidence parameters");
    BH_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
    // Eq. 3, E in probability units.
    const double n = z * z * q * (1.0 - q) / (accuracy * accuracy);
    const auto required = static_cast<std::uint64_t>(std::ceil(n));
    return required < floor_ ? floor_ : required;
}

Interval
meanInterval(double z, double mean, double stddev, std::uint64_t n)
{
    BH_ASSERT(n > 0, "meanInterval needs n > 0");
    return Interval{mean, z * stddev / std::sqrt(static_cast<double>(n))};
}

} // namespace bighouse
