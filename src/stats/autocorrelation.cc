#include "stats/autocorrelation.hh"

#include <algorithm>

#include "base/math_utils.hh"

namespace bighouse {

double
autocorrelation(std::span<const double> xs, std::size_t lag)
{
    const std::size_t n = xs.size();
    if (lag >= n || n < 2)
        return 0.0;
    const double mean = sampleMean(xs);
    double denominator = 0.0;
    for (double x : xs)
        denominator += (x - mean) * (x - mean);
    if (denominator == 0.0)
        return 0.0;
    double numerator = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i)
        numerator += (xs[i] - mean) * (xs[i + lag] - mean);
    return numerator / denominator;
}

std::vector<double>
autocorrelationFunction(std::span<const double> xs, std::size_t maxLag)
{
    std::vector<double> acf;
    acf.reserve(maxLag + 1);
    for (std::size_t lag = 0; lag <= maxLag; ++lag)
        acf.push_back(lag == 0 ? (xs.size() >= 2 ? 1.0 : 0.0)
                               : autocorrelation(xs, lag));
    return acf;
}

double
integratedAutocorrelationTime(std::span<const double> xs,
                              std::size_t maxLag)
{
    const std::size_t bound =
        std::min(maxLag, xs.empty() ? 0 : xs.size() - 1);
    double tau = 1.0;
    for (std::size_t lag = 1; lag <= bound; ++lag) {
        const double rho = autocorrelation(xs, lag);
        if (rho <= 0.0)
            break;  // initial-positive-sequence truncation
        tau += 2.0 * rho;
    }
    return tau;
}

} // namespace bighouse
