/**
 * @file
 * Streaming moment accumulation (Welford's algorithm) with parallel merge
 * (Chan et al.), used for every output metric's mean/variance estimate and
 * for combining per-slave samples in distributed simulations.
 */

#ifndef BIGHOUSE_STATS_ACCUMULATOR_HH
#define BIGHOUSE_STATS_ACCUMULATOR_HH

#include <cstdint>
#include <limits>

#include "base/contracts.hh"

namespace bighouse {

/** Numerically stable running mean/variance/min/max. */
class Accumulator
{
  public:
    /** Incorporate one observation. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - meanValue;
        meanValue += delta / static_cast<double>(n);
        m2 += delta * (x - meanValue);
        if (x < minValue)
            minValue = x;
        if (x > maxValue)
            maxValue = x;
        // Per-observation check only in audit builds: add() sits on the
        // hottest statistics path (every accepted sample).
        BH_AUDIT(m2 >= 0.0, "negative m2 after add(", x, ")");
    }

    /** Number of observations. */
    std::uint64_t count() const { return n; }

    /** Sample mean (0 before any observation). */
    double mean() const { return meanValue; }

    /** Unbiased sample variance (0 for n < 2). */
    double
    variance() const
    {
        return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
    }

    /** Sample standard deviation. */
    double stddev() const;

    /** Coefficient of variation (0 when the mean is 0). */
    double cv() const;

    /** Smallest observation (+inf before any observation). */
    double min() const { return minValue; }

    /** Largest observation (-inf before any observation). */
    double max() const { return maxValue; }

    /** Sum of all observations. */
    double sum() const { return meanValue * static_cast<double>(n); }

    /** Combine with another accumulator (order-independent). */
    void merge(const Accumulator& other);

    /**
     * Rebuild an accumulator from its summary statistics (the inverse of
     * reading count/mean/variance/min/max), used to revive checkpointed
     * per-slave samples. The restored accumulator merges exactly like
     * the original.
     */
    static Accumulator restore(std::uint64_t count, double mean,
                               double variance, double min, double max);

    /** Forget everything. */
    void reset() { *this = Accumulator(); }

  private:
    std::uint64_t n = 0;
    double meanValue = 0.0;
    double m2 = 0.0;
    double minValue = std::numeric_limits<double>::infinity();
    double maxValue = -std::numeric_limits<double>::infinity();
};

} // namespace bighouse

#endif // BIGHOUSE_STATS_ACCUMULATOR_HH
