/**
 * @file
 * Sample autocorrelation diagnostics.
 *
 * The calibration phase exists because queue outputs are autocorrelated
 * (Sec. 2.3); these helpers quantify *how much*: the sample ACF at given
 * lags and the integrated autocorrelation time tau — the factor by which
 * correlation inflates the variance of a sample mean (an i.i.d. sample
 * has tau = 1). Used by tests and diagnostics to justify the lag the
 * runs-up search picks.
 */

#ifndef BIGHOUSE_STATS_AUTOCORRELATION_HH
#define BIGHOUSE_STATS_AUTOCORRELATION_HH

#include <cstddef>
#include <span>
#include <vector>

namespace bighouse {

/**
 * Sample autocorrelation at one lag (biased normalization, the standard
 * estimator). Returns 0 for degenerate inputs (lag >= n or zero
 * variance).
 */
double autocorrelation(std::span<const double> xs, std::size_t lag);

/** ACF at lags 0..maxLag inclusive (acf[0] == 1 for non-degenerate xs). */
std::vector<double> autocorrelationFunction(std::span<const double> xs,
                                            std::size_t maxLag);

/**
 * Integrated autocorrelation time: tau = 1 + 2 * sum_k rho_k, summed
 * with the standard initial-positive-sequence truncation (stop at the
 * first non-positive rho). tau ~ 1 for i.i.d. data; the effective sample
 * size of n correlated observations is n / tau.
 */
double integratedAutocorrelationTime(std::span<const double> xs,
                                     std::size_t maxLag = 1000);

} // namespace bighouse

#endif // BIGHOUSE_STATS_AUTOCORRELATION_HH
