#include "parallel/slave_pool.hh"

#include <string>

#include "base/logging.hh"

namespace bighouse {

SlavePool::SlavePool(std::size_t workers)
{
    if (workers == 0)
        fatal("SlavePool needs at least one worker");
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back([this, w] { workerMain(w); });
}

SlavePool::~SlavePool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    taskReady.notify_all();
    for (std::thread& thread : threads)
        thread.join();
}

void
SlavePool::submit(std::function<void()> task)
{
    if (!task)
        fatal("SlavePool::submit needs a callable task");
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            fatal("SlavePool::submit on a pool that is shutting down");
        queue.push_back(std::move(task));
    }
    taskReady.notify_one();
}

void
SlavePool::drain()
{
    std::unique_lock<std::mutex> lock(mtx);
    allIdle.wait(lock, [this] { return queue.empty() && busy == 0; });
}

void
SlavePool::workerMain(std::size_t worker)
{
    // Baseline tag for this worker's log lines; tasks that know better
    // (supervised slaves) override it with their own ScopedLogTag.
    setThreadLogTag("pool-" + std::to_string(worker));
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            taskReady.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            // Drain the queue even when stopping: destruction must not
            // drop accepted work (a campaign's last points).
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
            ++busy;
        }
        // Tasks are expected to capture their own failures (supervised
        // slaves do); an escaped exception must still not take down the
        // pool and every task queued behind it.
        try {
            task();
        } catch (const std::exception& e) {
            warn("SlavePool task threw: ", e.what());
        } catch (...) {
            warn("SlavePool task threw an unknown exception");
        }
        {
            std::lock_guard<std::mutex> lock(mtx);
            --busy;
        }
        allIdle.notify_all();
    }
}

} // namespace bighouse
