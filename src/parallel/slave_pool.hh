/**
 * @file
 * SlavePool — a fixed set of long-lived worker threads shared across many
 * simulation runs.
 *
 * The Fig. 3 master/slave protocol is one *run*; a campaign (src/campaign)
 * is hundreds of runs. Spinning a fresh thread set per run wastes startup
 * latency and, worse, hides the resource envelope: a 12-point sweep on a
 * 4-wide pool should never hold more than 4 slave threads alive. The pool
 * makes that envelope explicit — ParallelRunner dispatches its slave loops
 * onto a caller-supplied pool (ParallelConfig::pool), and the campaign
 * scheduler feeds whole serial sweep points through the same threads.
 *
 * Tasks are executed FIFO. The pool makes no fairness or affinity
 * guarantees beyond that; simulation determinism never depends on which
 * worker runs a task (every task owns its simulation and derives its
 * seeds from content, not thread identity).
 */

#ifndef BIGHOUSE_PARALLEL_SLAVE_POOL_HH
#define BIGHOUSE_PARALLEL_SLAVE_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bighouse {

/** Fixed-width worker-thread pool with a FIFO task queue. */
class SlavePool
{
  public:
    /** Spawn `workers` threads (>= 1; fatal() on 0). */
    explicit SlavePool(std::size_t workers);

    /** Drains outstanding tasks, then joins every worker. */
    ~SlavePool();

    SlavePool(const SlavePool&) = delete;
    SlavePool& operator=(const SlavePool&) = delete;

    std::size_t workerCount() const { return threads.size(); }

    /**
     * Enqueue one task. Tasks must not block waiting for later-queued
     * tasks (FIFO execution on a fixed width would deadlock).
     */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void drain();

  private:
    void workerMain(std::size_t worker);

    std::mutex mtx;
    std::condition_variable taskReady;  ///< workers wait for work
    std::condition_variable allIdle;    ///< drain()/dtor wait for quiesce
    std::deque<std::function<void()>> queue;  ///< guarded by mtx
    std::size_t busy = 0;                     ///< tasks mid-execution
    bool stopping = false;                    ///< guarded by mtx
    std::vector<std::thread> threads;
};

} // namespace bighouse

#endif // BIGHOUSE_PARALLEL_SLAVE_POOL_HH
