/**
 * @file
 * Distributed (master/slave) stochastic queuing simulation — the Fig. 3
 * protocol:
 *
 *  1. the master executes just the warm-up and calibration phases and
 *     fixes the histogram bin scheme,
 *  2. the bin scheme is broadcast; each slave runs its own warm-up and
 *     calibration (own lag) with a unique random seed,
 *  3. slaves measure; the master monitors aggregate sample size and
 *     signals convergence when it suffices across the whole cluster,
 *  4. slave histograms are merged into a single estimate.
 *
 * "In a number of ways, the master-slave relationship resembles the
 * MapReduce framework" — slaves are embarrassingly parallel, sharing only
 * the stop flag and periodic sample-count snapshots.
 *
 * Here slaves are std::threads in one process; the protocol (including
 * the serialized bin-scheme broadcast) is the same one a multi-host
 * deployment would speak.
 *
 * The runtime treats slave failure as the normal case (SPECI-2's
 * design point): every slave runs under supervision — exceptions are
 * captured into a per-slave SlaveReport instead of terminating the
 * process, a watchdog abandons slaves that stop publishing progress,
 * stragglers lagging the median event count are flagged (and optionally
 * abandoned), and phase 4 merges only the healthy quorum, reporting a
 * degraded-but-valid estimate as long as `minHealthySlaves` survive.
 * Periodic checkpoints (see ParallelCheckpoint in core/results_io.hh)
 * make an interrupted run resumable. docs/robustness.md describes the
 * supervision state machine.
 */

#ifndef BIGHOUSE_PARALLEL_PARALLEL_HH
#define BIGHOUSE_PARALLEL_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/fault_injection.hh"
#include "core/results_io.hh"
#include "core/sqs.hh"
#include "parallel/slave_pool.hh"

namespace bighouse {

/** Builds a model (metrics + network) inside a fresh simulation.
 *  Must be deterministic in registration order: master and slaves rely on
 *  identical metric ids. */
using ModelBuilder = std::function<void(SqsSimulation&)>;

/** Supervision outcome for one slave. */
enum class SlaveStatus
{
    Running,   ///< still measuring (transient; never in a final report)
    Ok,        ///< finished cleanly; sample merged
    Failed,    ///< exception escaped the batch loop; sample discarded
    TimedOut,  ///< watchdog abandoned it; sample discarded
    Straggler, ///< lagged the median event rate; sample still merged
};

/** Render a SlaveStatus as text. */
const char* slaveStatusName(SlaveStatus status);

/**
 * Live view of one slave while a parallel run is in flight — the
 * machine-readable progress surface behind `bighouse_run --status-file`.
 */
struct ParallelSlaveProgress
{
    SlaveStatus status = SlaveStatus::Running;
    bool abandoned = false;
    std::uint64_t events = 0;          ///< events published so far
    double secondsSinceBeat = 0.0;     ///< staleness of the last heartbeat
};

/** Periodic snapshot of a whole parallel run's progress. */
struct ParallelProgressSnapshot
{
    /// Phase label: "calibration" while the master runs, "measurement"
    /// during the slave phase, "merged" on the terminal snapshot.
    std::string phase;
    bool converged = false;
    std::size_t healthySlaves = 0;
    std::uint64_t totalEvents = 0;     ///< published events, all slaves
    double elapsedSeconds = 0.0;
    std::vector<ParallelSlaveProgress> slaves;
};

/** Cluster shape and supervision policy of a parallel run. */
struct ParallelConfig
{
    std::size_t slaves = 4;
    SqsConfig sqs;
    /// Events a slave executes between sample-count publications.
    std::uint64_t slaveBatchEvents = 20000;

    // --- supervision ---
    /// Quorum: the run degrades (rather than completes) when fewer
    /// healthy slaves than this survive to the merge.
    std::size_t minHealthySlaves = 1;
    /// A slave that publishes no progress for this long is marked
    /// TimedOut and abandoned; 0 disables the watchdog.
    double watchdogSeconds = 0.0;
    /// A slave whose event count times this factor is below the median
    /// healthy slave's is flagged a straggler; 0 disables detection.
    /// Must be > 1 when enabled.
    double stragglerFactor = 0.0;
    /// Abandon flagged stragglers (their partial sample still merges —
    /// it is statistically valid; they just stop consuming a thread).
    bool abandonStragglers = false;
    /// Deterministic fault injection (tests / chaos soaks).
    FaultPlan faults;

    // --- execution substrate ---
    /// Non-owning. When set, slave simulations run as tasks on this
    /// shared pool instead of freshly spawned threads — a campaign
    /// (src/campaign) reuses one pool across every sweep point. The pool
    /// must have at least `slaves` workers (fewer would let the watchdog
    /// abandon slaves that were only ever queued). Results are identical
    /// either way; the pool only changes thread ownership.
    SlavePool* pool = nullptr;

    // --- checkpointing ---
    /// Non-empty -> periodic resumable snapshots are written here (and
    /// a final one whenever the run stops unconverged).
    std::string checkpointPath;
    double checkpointIntervalSeconds = 1.0;

    // --- observability (all optional; empty = zero overhead) ---
    /// Called once per simulation instance right after the model is
    /// built, before any event executes: (sim, slaveIndex, isMaster).
    /// The master is index 0 with isMaster == true. Runs on the thread
    /// that will drive the instance; must not perturb model state or
    /// RNG draws if bit-identical results are expected.
    std::function<void(SqsSimulation&, std::size_t, bool)> instrument;
    /// Called on the slave's own thread after its batch loop ends and
    /// the sample is published — the instance is quiescent, so the hook
    /// may sample engine/stats state (telemetry) freely.
    std::function<void(const SqsSimulation&, std::size_t)> onSlaveDone;
    /// Periodic progress publication from the monitor thread, plus one
    /// terminal snapshot (phase "merged") after the merge completes.
    std::function<void(const ParallelProgressSnapshot&)> progress;
    double progressIntervalSeconds = 0.5;
};

/** Per-slave supervision record (the failure roster of a run). */
struct SlaveReport
{
    SlaveStatus status = SlaveStatus::Running;
    std::string error;        ///< exception text when status == Failed
    bool abandoned = false;   ///< excluded from further work mid-run
    std::uint64_t calibrationEvents = 0;
    std::uint64_t totalEvents = 0;
};

/** Outcome of a parallel run, including the Fig. 10 phase accounting. */
struct ParallelResult
{
    bool converged = false;
    TerminationReason termination = TerminationReason::Converged;
    std::vector<MetricEstimate> estimates;  ///< merged across slaves
    /// Summed failure totals (master + every slave that ran); present
    /// only when the model installs a failure probe.
    std::optional<FailureTotals> failures;
    /// One timeline per merged contributor (master first, then each
    /// healthy slave as "slave-N"), all over master-aligned windows;
    /// empty when the model attaches no Timeline. Kept as separate
    /// tracks rather than pre-merged: per-slave series are the whole
    /// point (straggler onset, divergent failure waves).
    std::vector<TimelineData> timelines;

    /// True when at least one slave's sample was excluded from the
    /// merge (the estimate is built from a reduced quorum).
    bool degraded = false;
    /// Slaves whose samples were merged (Ok or Straggler).
    std::size_t healthySlaves = 0;
    /// Per-slave supervision outcomes, indexed by slave.
    std::vector<SlaveReport> slaveReports;
    /// Events inherited from the checkpoint on a resumed run.
    std::uint64_t resumedBaseEvents = 0;

    /// Events the master spent reaching end-of-calibration (serial part).
    std::uint64_t masterCalibrationEvents = 0;
    /// Per-slave events spent in warm-up + calibration (parallel but
    /// unsharded — every slave pays it; the Amdahl term of Fig. 10).
    std::vector<std::uint64_t> slaveCalibrationEvents;
    /// Per-slave total events (calibration + measurement share).
    std::vector<std::uint64_t> slaveTotalEvents;
    std::uint64_t totalEvents = 0;
    double wallSeconds = 0.0;

    /**
     * Modeled speedup over a serial run that needed `serialEvents`
     * events: T(k) ~ masterCal + max_s(slaveTotal_s) when event cost is
     * uniform. Provided by the Fig. 10 bench.
     */
    double modeledSpeedup(std::uint64_t serialEvents) const;
};

/** Orchestrates one master and N slave simulations. */
class ParallelRunner
{
  public:
    ParallelRunner(ModelBuilder builder, ParallelConfig config);

    /**
     * Execute the full Fig. 3 protocol.
     * @param rootSeed seeds the master; slave s uses a distinct stream
     *        derived from it.
     */
    ParallelResult run(std::uint64_t rootSeed);

    /**
     * Resume an interrupted run from a checkpoint: the checkpointed
     * sample seeds the aggregate convergence check and the final merge,
     * so strictly fewer new measurement events are needed than a cold
     * run. The model and the checkpoint's rootSeed must match the
     * original run (the bin schemes are re-derived and verified);
     * the slave count may differ. Resumed slaves draw fresh per-epoch
     * seed streams, keeping new samples independent of the prior.
     */
    ParallelResult resume(const ParallelCheckpoint& from);

  private:
    ParallelResult execute(std::uint64_t rootSeed,
                           const ParallelCheckpoint* from);

    ModelBuilder builder;
    ParallelConfig cfg;
};

} // namespace bighouse

#endif // BIGHOUSE_PARALLEL_PARALLEL_HH
