/**
 * @file
 * Distributed (master/slave) stochastic queuing simulation — the Fig. 3
 * protocol:
 *
 *  1. the master executes just the warm-up and calibration phases and
 *     fixes the histogram bin scheme,
 *  2. the bin scheme is broadcast; each slave runs its own warm-up and
 *     calibration (own lag) with a unique random seed,
 *  3. slaves measure; the master monitors aggregate sample size and
 *     signals convergence when it suffices across the whole cluster,
 *  4. slave histograms are merged into a single estimate.
 *
 * "In a number of ways, the master-slave relationship resembles the
 * MapReduce framework" — slaves are embarrassingly parallel, sharing only
 * the stop flag and periodic sample-count snapshots.
 *
 * Here slaves are std::threads in one process; the protocol (including
 * the serialized bin-scheme broadcast) is the same one a multi-host
 * deployment would speak.
 */

#ifndef BIGHOUSE_PARALLEL_PARALLEL_HH
#define BIGHOUSE_PARALLEL_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/sqs.hh"

namespace bighouse {

/** Builds a model (metrics + network) inside a fresh simulation.
 *  Must be deterministic in registration order: master and slaves rely on
 *  identical metric ids. */
using ModelBuilder = std::function<void(SqsSimulation&)>;

/** Cluster shape of a parallel run. */
struct ParallelConfig
{
    std::size_t slaves = 4;
    SqsConfig sqs;
    /// Events a slave executes between sample-count publications.
    std::uint64_t slaveBatchEvents = 20000;
};

/** Outcome of a parallel run, including the Fig. 10 phase accounting. */
struct ParallelResult
{
    bool converged = false;
    std::vector<MetricEstimate> estimates;  ///< merged across slaves

    /// Events the master spent reaching end-of-calibration (serial part).
    std::uint64_t masterCalibrationEvents = 0;
    /// Per-slave events spent in warm-up + calibration (parallel but
    /// unsharded — every slave pays it; the Amdahl term of Fig. 10).
    std::vector<std::uint64_t> slaveCalibrationEvents;
    /// Per-slave total events (calibration + measurement share).
    std::vector<std::uint64_t> slaveTotalEvents;
    std::uint64_t totalEvents = 0;
    double wallSeconds = 0.0;

    /**
     * Modeled speedup over a serial run that needed `serialEvents`
     * events: T(k) ~ masterCal + max_s(slaveTotal_s) when event cost is
     * uniform. Provided by the Fig. 10 bench.
     */
    double modeledSpeedup(std::uint64_t serialEvents) const;
};

/** Orchestrates one master and N slave simulations. */
class ParallelRunner
{
  public:
    ParallelRunner(ModelBuilder builder, ParallelConfig config);

    /**
     * Execute the full Fig. 3 protocol.
     * @param rootSeed seeds the master; slave s uses a distinct stream
     *        derived from it.
     */
    ParallelResult run(std::uint64_t rootSeed);

  private:
    ModelBuilder builder;
    ParallelConfig cfg;
};

} // namespace bighouse

#endif // BIGHOUSE_PARALLEL_PARALLEL_HH
