#include "parallel/parallel.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "stats/confidence.hh"

namespace bighouse {

double
ParallelResult::modeledSpeedup(std::uint64_t serialEvents) const
{
    std::uint64_t slowestSlave = 0;
    for (std::uint64_t events : slaveTotalEvents)
        slowestSlave = std::max(slowestSlave, events);
    const std::uint64_t parallelCritical =
        masterCalibrationEvents + slowestSlave;
    if (parallelCritical == 0)
        return 0.0;
    return static_cast<double>(serialEvents)
           / static_cast<double>(parallelCritical);
}

ParallelRunner::ParallelRunner(ModelBuilder modelBuilder,
                               ParallelConfig config)
    : builder(std::move(modelBuilder)), cfg(config)
{
    if (!builder)
        fatal("ParallelRunner needs a model builder");
    if (cfg.slaves == 0)
        fatal("ParallelRunner needs at least one slave");
}

namespace {

/** Advance a simulation until every metric finished calibration. */
std::uint64_t
runToMeasurement(SqsSimulation& sim, std::uint64_t batch)
{
    std::uint64_t events = 0;
    while (true) {
        bool allMeasuring = true;
        StatsCollection& stats = sim.stats();
        for (std::size_t i = 0; i < stats.metricCount(); ++i) {
            const Phase phase = stats.metric(i).phase();
            if (phase == Phase::Calibration || phase == Phase::Warmup) {
                allMeasuring = false;
                break;
            }
        }
        if (!stats.warmedUp())
            allMeasuring = false;
        if (allMeasuring)
            return events;
        const std::uint64_t ran = sim.runBatch(batch);
        if (ran == 0)
            fatal("model drained before completing calibration");
        events += ran;
    }
}

/** Published per-slave progress snapshot. */
struct SlaveProgress
{
    std::vector<Accumulator> perMetric;
};

} // namespace

ParallelResult
ParallelRunner::run(std::uint64_t rootSeed)
{
    const auto wallStart = std::chrono::steady_clock::now();
    ParallelResult result;

    // --- Phase 1: master warm-up + calibration fixes the bin schemes.
    Rng seeder(rootSeed);
    SqsSimulation master(cfg.sqs, seeder.next());
    builder(master);
    const std::size_t metricCount = master.stats().metricCount();
    BH_ASSERT(metricCount > 0, "parallel run with no metrics");
    result.masterCalibrationEvents =
        runToMeasurement(master, cfg.sqs.batchEvents);

    // The broadcast payload: one serialized scheme per metric (the same
    // bytes a networked deployment would ship to remote slaves).
    std::vector<std::string> broadcast;
    broadcast.reserve(metricCount);
    for (std::size_t i = 0; i < metricCount; ++i) {
        broadcast.push_back(
            master.stats().metric(i).histogram().scheme().serialize());
    }

    // --- Phase 2: construct slaves with unique seeds + adopted schemes.
    std::vector<std::unique_ptr<SqsSimulation>> slaves;
    slaves.reserve(cfg.slaves);
    for (std::size_t s = 0; s < cfg.slaves; ++s) {
        auto slave =
            std::make_unique<SqsSimulation>(cfg.sqs, seeder.next());
        builder(*slave);
        if (slave->stats().metricCount() != metricCount)
            fatal("model builder is not deterministic: slave registered ",
                  slave->stats().metricCount(), " metrics, master ",
                  metricCount);
        for (std::size_t i = 0; i < metricCount; ++i) {
            slave->stats().metric(i).adoptBinScheme(
                BinScheme::deserialize(broadcast[i]));
            slave->stats().metric(i).disableSelfConvergence();
        }
        slaves.push_back(std::move(slave));
    }

    // --- Phase 3: slaves measure; the master monitors aggregate size.
    std::atomic<bool> stop{false};
    std::mutex progressMutex;
    std::vector<SlaveProgress> progress(cfg.slaves);
    for (auto& p : progress)
        p.perMetric.resize(metricCount);
    std::vector<std::uint64_t> calibrationEvents(cfg.slaves, 0);
    std::vector<std::uint64_t> totalEvents(cfg.slaves, 0);

    // Aggregate-convergence predicate (Eqs. 2-3 over the merged sample).
    // Evaluated under progressMutex. Slaves run it right after publishing
    // a snapshot so the cluster stops within one batch of sufficiency;
    // the master's poll below is only a liveness fallback.
    const double z = ConfidenceSpec{cfg.sqs.accuracy, cfg.sqs.confidence}
                         .critical();
    auto aggregateSatisfied = [&]() {
        for (std::size_t i = 0; i < metricCount; ++i) {
            Accumulator merged;
            for (std::size_t s = 0; s < cfg.slaves; ++s)
                merged.merge(progress[s].perMetric[i]);
            const MetricSpec& spec =
                master.stats().metric(i).specification();
            std::uint64_t required = requiredSamplesMean(
                z, merged.mean(), merged.stddev(), spec.target.accuracy);
            for (double q : spec.quantiles) {
                required = std::max(
                    required,
                    requiredSamplesQuantile(z, q, spec.target.accuracy));
            }
            if (merged.count() < required)
                return false;
        }
        return true;
    };

    std::atomic<std::size_t> activeSlaves{cfg.slaves};
    auto slaveMain = [&](std::size_t index) {
        SqsSimulation& sim = *slaves[index];
        calibrationEvents[index] =
            runToMeasurement(sim, cfg.slaveBatchEvents);
        std::uint64_t events = calibrationEvents[index];
        while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t ran = sim.runBatch(cfg.slaveBatchEvents);
            events += ran;
            if (ran == 0)
                break;
            std::lock_guard<std::mutex> lock(progressMutex);
            for (std::size_t i = 0; i < metricCount; ++i) {
                progress[index].perMetric[i] =
                    sim.stats().metric(i).sampleAccumulator();
            }
            if (aggregateSatisfied())
                stop.store(true, std::memory_order_relaxed);
        }
        totalEvents[index] = events;
        activeSlaves.fetch_sub(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> threads;
    threads.reserve(cfg.slaves);
    for (std::size_t s = 0; s < cfg.slaves; ++s)
        threads.emplace_back(slaveMain, s);

    // Master monitor (liveness fallback — slaves normally detect
    // sufficiency themselves right after publishing).
    while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        // A drained (closed) model can end every slave early; don't spin.
        if (activeSlaves.load(std::memory_order_relaxed) == 0)
            break;
        std::lock_guard<std::mutex> lock(progressMutex);
        if (aggregateSatisfied())
            stop.store(true, std::memory_order_relaxed);
    }
    for (auto& thread : threads)
        thread.join();

    // --- Phase 4: merge slave histograms into the master's estimate.
    for (std::size_t i = 0; i < metricCount; ++i) {
        OutputMetric& masterMetric = master.stats().metric(i);
        for (const auto& slave : slaves)
            masterMetric.absorb(slave->stats().metric(i));
        masterMetric.evaluateConvergence();
    }

    result.converged = master.stats().allConverged();
    result.estimates = master.stats().estimates();
    result.slaveCalibrationEvents = calibrationEvents;
    result.slaveTotalEvents = totalEvents;
    result.totalEvents = result.masterCalibrationEvents;
    for (std::uint64_t events : totalEvents)
        result.totalEvents += events;
    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wallStart)
                             .count();
    return result;
}

} // namespace bighouse
