#include "parallel/parallel.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "base/contracts.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "stats/confidence.hh"

namespace bighouse {

double
ParallelResult::modeledSpeedup(std::uint64_t serialEvents) const
{
    std::uint64_t slowestSlave = 0;
    for (std::uint64_t events : slaveTotalEvents)
        slowestSlave = std::max(slowestSlave, events);
    const std::uint64_t parallelCritical =
        masterCalibrationEvents + slowestSlave;
    if (parallelCritical == 0)
        return 0.0;
    return static_cast<double>(serialEvents)
           / static_cast<double>(parallelCritical);
}

const char*
slaveStatusName(SlaveStatus status)
{
    switch (status) {
      case SlaveStatus::Running: return "running";
      case SlaveStatus::Ok: return "ok";
      case SlaveStatus::Failed: return "failed";
      case SlaveStatus::TimedOut: return "timed-out";
      case SlaveStatus::Straggler: return "straggler";
    }
    return "unknown";
}

ParallelRunner::ParallelRunner(ModelBuilder modelBuilder,
                               ParallelConfig config)
    : builder(std::move(modelBuilder)), cfg(config)
{
    if (!builder)
        fatal("ParallelRunner needs a model builder");
    if (cfg.slaves == 0)
        fatal("ParallelRunner needs at least one slave");
    if (cfg.slaveBatchEvents == 0)
        fatal("ParallelConfig slaveBatchEvents must be >= 1 (0 would "
              "publish no progress and never converge)");
    if (cfg.minHealthySlaves > cfg.slaves)
        fatal("ParallelConfig minHealthySlaves (", cfg.minHealthySlaves,
              ") exceeds the slave count (", cfg.slaves, ")");
    if (cfg.watchdogSeconds < 0.0)
        fatal("ParallelConfig watchdogSeconds must be >= 0");
    if (cfg.stragglerFactor != 0.0 && cfg.stragglerFactor <= 1.0)
        fatal("ParallelConfig stragglerFactor must be > 1 (or 0 to "
              "disable straggler detection)");
    if (!cfg.checkpointPath.empty() && cfg.checkpointIntervalSeconds <= 0.0)
        fatal("ParallelConfig checkpointIntervalSeconds must be > 0");
    if (cfg.pool != nullptr && cfg.pool->workerCount() < cfg.slaves)
        fatal("ParallelConfig pool has ", cfg.pool->workerCount(),
              " workers for ", cfg.slaves,
              " slaves; queued slaves would look dead to the watchdog");
}

namespace {

/**
 * Advance a simulation until every metric finished calibration.
 * `tick`, when provided, runs after every batch with the events executed
 * so far; returning false abandons calibration early (supervised slaves
 * bail out when the run stops under them).
 */
std::uint64_t
runToMeasurement(SqsSimulation& sim, std::uint64_t batch,
                 const std::function<bool(std::uint64_t)>& tick)
{
    std::uint64_t events = 0;
    while (true) {
        bool allMeasuring = true;
        StatsCollection& stats = sim.stats();
        for (std::size_t i = 0; i < stats.metricCount(); ++i) {
            const Phase phase = stats.metric(i).phase();
            if (phase == Phase::Calibration || phase == Phase::Warmup) {
                allMeasuring = false;
                break;
            }
        }
        if (!stats.warmedUp())
            allMeasuring = false;
        if (allMeasuring)
            return events;
        const std::uint64_t ran = sim.runBatch(batch);
        if (ran == 0)
            fatal("model drained before completing calibration");
        events += ran;
        if (tick && !tick(events))
            return events;
    }
}

/** Published per-slave progress snapshot. */
struct SlaveProgress
{
    std::vector<Accumulator> perMetric;
    /// Serialized measurement histograms (only while checkpointing).
    std::vector<std::string> histograms;
    std::uint64_t events = 0;  ///< calibration + measurement, published
    std::chrono::steady_clock::time_point lastBeat;
    bool measured = false;  ///< published at least one measurement batch
};

} // namespace

ParallelResult
ParallelRunner::run(std::uint64_t rootSeed)
{
    return execute(rootSeed, nullptr);
}

ParallelResult
ParallelRunner::resume(const ParallelCheckpoint& from)
{
    return execute(from.rootSeed, &from);
}

ParallelResult
ParallelRunner::execute(std::uint64_t rootSeed,
                        const ParallelCheckpoint* from)
{
    using clock = std::chrono::steady_clock;
    const auto wallStart = clock::now();
    auto secondsSince = [](clock::time_point since, clock::time_point now) {
        return std::chrono::duration<double>(now - since).count();
    };
    ParallelResult result;
    result.slaveReports.resize(cfg.slaves);

    // --- Phase 1: master warm-up + calibration fixes the bin schemes.
    Rng seeder(rootSeed);
    SqsSimulation master(cfg.sqs, seeder.next());
    builder(master);
    if (cfg.instrument)
        cfg.instrument(master, 0, true);
    const std::size_t metricCount = master.stats().metricCount();
    BH_ASSERT(metricCount > 0, "parallel run with no metrics");
    result.masterCalibrationEvents =
        runToMeasurement(master, cfg.sqs.batchEvents, nullptr);
    // Failure-totals aggregation: the master's calibration segment plus
    // every slave's full run. Guarded by mtx on the slave side; the
    // master contribution happens before any slave exists.
    FailureTotals aggregateFailures;
    bool failuresPresent = false;
    if (master.failureProbe()) {
        aggregateFailures.accumulate(master.failureProbe()());
        failuresPresent = true;
    }
    if (cfg.progress) {
        // Calibration-phase snapshot: the slaves exist only on paper yet.
        ParallelProgressSnapshot snap;
        snap.phase = "calibration";
        snap.healthySlaves = cfg.slaves;
        snap.totalEvents = result.masterCalibrationEvents;
        snap.elapsedSeconds = secondsSince(wallStart, clock::now());
        snap.slaves.resize(cfg.slaves);
        cfg.progress(snap);
    }

    // The broadcast payload: one serialized scheme per metric (the same
    // bytes a networked deployment would ship to remote slaves).
    std::vector<std::string> broadcast;
    broadcast.reserve(metricCount);
    for (std::size_t i = 0; i < metricCount; ++i) {
        broadcast.push_back(
            master.stats().metric(i).histogram().scheme().serialize());
    }

    // --- Resume prior: revive the checkpointed sample as a merged base
    // that seeds both the aggregate convergence check and the final
    // merge.
    const std::uint64_t epoch = from != nullptr ? from->epoch + 1 : 0;
    std::vector<Accumulator> baseAcc(metricCount);
    std::vector<std::optional<Histogram>> baseHist(metricCount);
    if (from != nullptr) {
        if (from->metricNames.size() != metricCount) {
            fatal("checkpoint has ", from->metricNames.size(),
                  " metrics but the model registers ", metricCount);
        }
        for (std::size_t i = 0; i < metricCount; ++i) {
            const std::string& name =
                master.stats().metric(i).specification().name;
            if (from->metricNames[i] != name) {
                fatal("checkpoint metric ", i, " is '",
                      from->metricNames[i], "' but the model registers '",
                      name, "' — resume needs the original model");
            }
            if (from->binSchemes[i] != broadcast[i]) {
                fatal("checkpoint bin scheme for '", name,
                      "' differs from this run's calibration — resume "
                      "needs the original model, config, and root seed");
            }
        }
        auto addSample = [&](const CheckpointSample& sample,
                             std::size_t i) {
            if (sample.count == 0 && sample.histogram.empty())
                return;
            baseAcc[i].merge(Accumulator::restore(
                sample.count, sample.mean, sample.variance, sample.min,
                sample.max));
            if (!sample.histogram.empty()) {
                Histogram h = Histogram::deserialize(sample.histogram);
                if (!baseHist[i].has_value())
                    baseHist[i].emplace(std::move(h));
                else
                    baseHist[i]->merge(h);
            }
        };
        for (std::size_t i = 0; i < from->base.size(); ++i)
            addSample(from->base[i], i);
        result.resumedBaseEvents = from->baseEvents;
        for (const CheckpointSlave& slave : from->slaves) {
            result.resumedBaseEvents += slave.events;
            for (std::size_t i = 0; i < slave.samples.size(); ++i)
                addSample(slave.samples[i], i);
        }
    }

    // --- Phase 2: construct slaves with unique seeds + adopted schemes.
    // Resumed epochs mix a per-epoch constant into every slave seed so
    // post-resume measurement is independent of the checkpointed sample
    // (replaying the original streams would double-count it).
    const std::uint64_t epochMix =
        epoch == 0 ? 0
                   : SplitMix64(epoch * 0x9e3779b97f4a7c15ULL).next();
    std::vector<std::unique_ptr<SqsSimulation>> slaves;
    slaves.reserve(cfg.slaves);
    for (std::size_t s = 0; s < cfg.slaves; ++s) {
        auto slave = std::make_unique<SqsSimulation>(
            cfg.sqs, seeder.next() ^ epochMix);
        builder(*slave);
        if (slave->stats().metricCount() != metricCount)
            fatal("model builder is not deterministic: slave registered ",
                  slave->stats().metricCount(), " metrics, master ",
                  metricCount);
        for (std::size_t i = 0; i < metricCount; ++i) {
            slave->stats().metric(i).adoptBinScheme(
                BinScheme::deserialize(broadcast[i]));
            slave->stats().metric(i).disableSelfConvergence();
        }
        slaves.push_back(std::move(slave));
    }

    // --- Phase 3: slaves measure under supervision; the master monitors
    // aggregate size, heartbeats, stragglers, safety valves, and quorum.
    std::atomic<bool> stop{false};
    auto abandonFlags =
        std::make_unique<std::atomic<bool>[]>(cfg.slaves);
    std::mutex mtx;
    std::condition_variable progressCv;
    bool reasonSet = false;  // guarded by mtx
    TerminationReason reason = TerminationReason::Converged;
    std::vector<SlaveProgress> progress(cfg.slaves);
    for (auto& p : progress) {
        p.perMetric.resize(metricCount);
        p.histograms.resize(metricCount);
        p.lastBeat = wallStart;
    }
    const bool checkpointing = !cfg.checkpointPath.empty();
    // Faults draw from their own stream so injected runs keep the same
    // slave seeds as clean ones (reproducibility of the healthy part).
    FaultInjector injector(cfg.faults, cfg.slaves,
                           SplitMix64(rootSeed ^ 0xfa171f17ec7edULL)
                               .next());

    // All of the following helpers run under mtx.
    auto trip = [&](TerminationReason r) {
        if (!reasonSet) {
            reasonSet = true;
            reason = r;
            stop.store(true, std::memory_order_relaxed);
            progressCv.notify_all();
        }
    };
    auto healthy = [&](std::size_t s) {
        const SlaveStatus status = result.slaveReports[s].status;
        return status == SlaveStatus::Running || status == SlaveStatus::Ok
               || status == SlaveStatus::Straggler;
    };
    auto healthyCount = [&]() {
        std::size_t count = 0;
        for (std::size_t s = 0; s < cfg.slaves; ++s)
            count += healthy(s) ? 1 : 0;
        return count;
    };
    auto publishedEvents = [&]() {
        std::uint64_t total = result.masterCalibrationEvents;
        for (const SlaveProgress& p : progress)
            total += p.events;
        return total;
    };

    // Aggregate-convergence predicate (Eqs. 2-3 over the merged sample,
    // widened to the *surviving* slaves plus the checkpointed base).
    // Slaves run it right after publishing a snapshot so the cluster
    // stops within one batch of sufficiency; the monitor below is only
    // a liveness fallback.
    const double z = ConfidenceSpec{cfg.sqs.accuracy, cfg.sqs.confidence}
                         .critical();
    auto aggregateSatisfied = [&]() {
        for (std::size_t i = 0; i < metricCount; ++i) {
            Accumulator merged = baseAcc[i];
            for (std::size_t s = 0; s < cfg.slaves; ++s) {
                if (healthy(s))
                    merged.merge(progress[s].perMetric[i]);
            }
            if (merged.count() == 0)
                return false;
            const MetricSpec& spec =
                master.stats().metric(i).specification();
            std::uint64_t required = requiredSamplesMean(
                z, merged.mean(), merged.stddev(), spec.target.accuracy);
            for (double q : spec.quantiles) {
                required = std::max(
                    required,
                    requiredSamplesQuantile(z, q, spec.target.accuracy));
            }
            if (merged.count() < required)
                return false;
        }
        return true;
    };

    auto buildCheckpoint = [&]() {
        ParallelCheckpoint cp;
        cp.rootSeed = rootSeed;
        cp.epoch = epoch;
        cp.baseEvents =
            result.resumedBaseEvents + result.masterCalibrationEvents;
        for (std::size_t i = 0; i < metricCount; ++i) {
            cp.metricNames.push_back(
                master.stats().metric(i).specification().name);
        }
        cp.binSchemes = broadcast;
        if (from != nullptr) {
            for (std::size_t i = 0; i < metricCount; ++i) {
                CheckpointSample sample;
                sample.count = baseAcc[i].count();
                sample.mean = baseAcc[i].mean();
                sample.variance = baseAcc[i].variance();
                sample.min = baseAcc[i].min();
                sample.max = baseAcc[i].max();
                if (baseHist[i].has_value())
                    sample.histogram = baseHist[i]->serialize();
                cp.base.push_back(std::move(sample));
            }
        }
        for (std::size_t s = 0; s < cfg.slaves; ++s) {
            if (!healthy(s) || !progress[s].measured)
                continue;
            CheckpointSlave slave;
            slave.events = progress[s].events;
            bool complete = true;
            for (std::size_t i = 0; i < metricCount; ++i) {
                if (progress[s].histograms[i].empty()) {
                    complete = false;
                    break;
                }
                CheckpointSample sample;
                const Accumulator& acc = progress[s].perMetric[i];
                sample.count = acc.count();
                sample.mean = acc.mean();
                sample.variance = acc.variance();
                sample.min = acc.min();
                sample.max = acc.max();
                sample.histogram = progress[s].histograms[i];
                slave.samples.push_back(std::move(sample));
            }
            if (complete)
                cp.slaves.push_back(std::move(slave));
        }
        return cp;
    };

    // Runs under mtx: live view of the slave phase for cfg.progress.
    auto buildProgress = [&](clock::time_point now) {
        ParallelProgressSnapshot snap;
        snap.phase = "measurement";
        snap.healthySlaves = healthyCount();
        snap.totalEvents = publishedEvents();
        snap.elapsedSeconds = secondsSince(wallStart, now);
        snap.slaves.resize(cfg.slaves);
        for (std::size_t s = 0; s < cfg.slaves; ++s) {
            snap.slaves[s].status = result.slaveReports[s].status;
            snap.slaves[s].abandoned = result.slaveReports[s].abandoned;
            snap.slaves[s].events = progress[s].events;
            snap.slaves[s].secondsSinceBeat =
                secondsSince(progress[s].lastBeat, now);
        }
        return snap;
    };

    std::atomic<std::size_t> activeSlaves{cfg.slaves};
    auto slaveMain = [&](std::size_t index) {
        // Tag this thread's log lines so interleaved slave output is
        // attributable (satellite of the single-write logging fix).
        ScopedLogTag logTag("slave-" + std::to_string(index));
        SqsSimulation& sim = *slaves[index];
        if (cfg.instrument)
            cfg.instrument(sim, index, false);
        SlaveReport& report = result.slaveReports[index];
        std::uint64_t events = 0;
        auto cancelled = [&]() {
            return stop.load(std::memory_order_relaxed)
                   || abandonFlags[index].load(std::memory_order_relaxed);
        };
        try {
            // Calibration heart-beats so the watchdog sees liveness and
            // the maxEvents valve sees calibration work too.
            events = runToMeasurement(
                sim, cfg.slaveBatchEvents, [&](std::uint64_t soFar) {
                    std::lock_guard<std::mutex> lock(mtx);
                    progress[index].events = soFar;
                    progress[index].lastBeat = clock::now();
                    return !cancelled();
                });
            {
                std::lock_guard<std::mutex> lock(mtx);
                report.calibrationEvents = events;
                progress[index].events = events;
                progress[index].lastBeat = clock::now();
            }
            progressCv.notify_all();
            while (!cancelled()) {
                injector.atBatchBoundary(index, events, cancelled);
                if (cancelled())
                    break;
                const std::uint64_t ran =
                    sim.runBatch(cfg.slaveBatchEvents);
                events += ran;
                // Serialize outside the lock: only this thread writes
                // this sim, and the monitor never touches sims.
                std::vector<std::string> histSnapshots;
                if (checkpointing) {
                    histSnapshots.reserve(metricCount);
                    for (std::size_t i = 0; i < metricCount; ++i) {
                        histSnapshots.push_back(
                            sim.stats().metric(i).histogram().serialize());
                    }
                }
                {
                    std::lock_guard<std::mutex> lock(mtx);
                    for (std::size_t i = 0; i < metricCount; ++i) {
                        progress[index].perMetric[i] =
                            sim.stats().metric(i).sampleAccumulator();
                    }
                    if (checkpointing)
                        progress[index].histograms =
                            std::move(histSnapshots);
                    progress[index].events = events;
                    progress[index].lastBeat = clock::now();
                    progress[index].measured = true;
                    if (ran != 0) {
                        if (aggregateSatisfied())
                            trip(TerminationReason::Converged);
                        else if (cfg.sqs.maxEvents != 0
                                 && publishedEvents() >= cfg.sqs.maxEvents)
                            trip(TerminationReason::MaxEvents);
                        else if (cfg.sqs.maxSimTime != 0
                                 && sim.engine().now()
                                        >= cfg.sqs.maxSimTime)
                            trip(TerminationReason::MaxSimTime);
                    }
                }
                progressCv.notify_all();
                if (ran == 0)
                    break;  // drained: nothing more to contribute
            }
        } catch (const std::exception& e) {
            std::lock_guard<std::mutex> lock(mtx);
            report.status = SlaveStatus::Failed;
            report.error = e.what();
            // Discard the victim's published sample: a slave that blew
            // up mid-measurement cannot vouch for its snapshot.
            for (Accumulator& acc : progress[index].perMetric)
                acc.reset();
            progress[index].histograms.assign(metricCount, std::string());
            progress[index].measured = false;
        } catch (...) {
            std::lock_guard<std::mutex> lock(mtx);
            report.status = SlaveStatus::Failed;
            report.error = "unknown exception";
            for (Accumulator& acc : progress[index].perMetric)
                acc.reset();
            progress[index].histograms.assign(metricCount, std::string());
            progress[index].measured = false;
        }
        // The sim is quiescent here: fold its failure totals into the
        // run aggregate. Failed slaves contribute too — their estimates
        // are discarded, but their failure events did happen, and
        // ensemble conservation is checked against what actually ran.
        if (sim.failureProbe()) {
            const FailureTotals totals = sim.failureProbe()();
            std::lock_guard<std::mutex> lock(mtx);
            aggregateFailures.accumulate(totals);
        }
        // Telemetry hook before the active-count decrement: in pool mode
        // the waiter may tear down this frame (cfg, slaves) the moment it
        // observes the zero count. The sim is quiescent here.
        if (cfg.onSlaveDone)
            cfg.onSlaveDone(sim, index);
        {
            std::lock_guard<std::mutex> lock(mtx);
            report.totalEvents = events;
            if (report.status == SlaveStatus::Running)
                report.status = SlaveStatus::Ok;
            // Decrement under mtx: the pool-mode completion wait checks
            // this count under the same lock, so the paired notify can
            // never slip between its predicate check and its sleep.
            activeSlaves.fetch_sub(1, std::memory_order_relaxed);
            // Notify while STILL holding mtx. In pool mode the waiter
            // may destroy progressCv (it lives in this frame) as soon
            // as it observes the zero count, and it can only observe it
            // after this unlock — so the unlock must be this thread's
            // last touch of the frame. A notify after the unlock would
            // race with that destruction.
            progressCv.notify_all();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(cfg.slaves);
    {
        // Heartbeats start at spawn time, not wallStart: the master's
        // calibration already consumed wall clock, and charging it to
        // the slaves would let the watchdog fire before they ever ran.
        std::lock_guard<std::mutex> lock(mtx);
        const auto spawnTime = clock::now();
        for (auto& p : progress)
            p.lastBeat = spawnTime;
    }
    for (std::size_t s = 0; s < cfg.slaves; ++s) {
        if (cfg.pool != nullptr)
            cfg.pool->submit([&slaveMain, s] { slaveMain(s); });
        else
            threads.emplace_back(slaveMain, s);
    }

    // Supervision monitor. Convergence is normally tripped by the slave
    // that publishes the sufficient sample (the condition variable only
    // has to relay it), so stop latency does not depend on this tick;
    // the tick bounds watchdog/straggler/deadline/checkpoint latency.
    {
        std::unique_lock<std::mutex> lock(mtx);
        auto lastCheckpoint = wallStart;
        auto lastProgress = wallStart;
        while (!reasonSet) {
            if (activeSlaves.load(std::memory_order_relaxed) == 0)
                break;
            progressCv.wait_for(lock, std::chrono::milliseconds(10));
            if (reasonSet)
                break;
            const auto now = clock::now();
            if (aggregateSatisfied()) {  // liveness fallback
                trip(TerminationReason::Converged);
                break;
            }
            if (cfg.sqs.maxEvents != 0
                && publishedEvents() >= cfg.sqs.maxEvents) {
                trip(TerminationReason::MaxEvents);
                break;
            }
            if (cfg.sqs.maxWallSeconds > 0.0
                && secondsSince(wallStart, now) >= cfg.sqs.maxWallSeconds) {
                trip(TerminationReason::Deadline);
                break;
            }
            if (cfg.watchdogSeconds > 0.0) {
                for (std::size_t s = 0; s < cfg.slaves; ++s) {
                    SlaveReport& report = result.slaveReports[s];
                    if (report.abandoned || !healthy(s))
                        continue;
                    if (report.status == SlaveStatus::Ok)
                        continue;  // already finished
                    if (secondsSince(progress[s].lastBeat, now)
                        <= cfg.watchdogSeconds)
                        continue;
                    warn("slave ", s, " missed its ",
                         cfg.watchdogSeconds,
                         "s watchdog deadline; abandoning it");
                    report.status = SlaveStatus::TimedOut;
                    report.abandoned = true;
                    abandonFlags[s].store(true,
                                          std::memory_order_relaxed);
                    for (Accumulator& acc : progress[s].perMetric)
                        acc.reset();
                    progress[s].histograms.assign(metricCount,
                                                  std::string());
                    progress[s].measured = false;
                }
            }
            if (cfg.stragglerFactor > 1.0) {
                // Compare measurement-phase event counts: calibration
                // cost is common-mode, so the measurement share is the
                // honest rate signal.
                std::vector<std::uint64_t> measured;
                for (std::size_t s = 0; s < cfg.slaves; ++s) {
                    if (healthy(s) && progress[s].measured) {
                        measured.push_back(
                            progress[s].events
                            - result.slaveReports[s].calibrationEvents);
                    }
                }
                if (measured.size() >= 3) {
                    std::nth_element(measured.begin(),
                                     measured.begin()
                                         + measured.size() / 2,
                                     measured.end());
                    const std::uint64_t median =
                        measured[measured.size() / 2];
                    // Grace: wait until the median slave has cleared a
                    // few batches, or every fresh slave looks slow.
                    if (median >= 4 * cfg.slaveBatchEvents) {
                        for (std::size_t s = 0; s < cfg.slaves; ++s) {
                            SlaveReport& report = result.slaveReports[s];
                            // Finished calibration but lagging the
                            // median — zero measurement batches counts
                            // (a slave wedged at measurement start is
                            // the canonical straggler).
                            if (report.status != SlaveStatus::Running
                                || report.calibrationEvents == 0)
                                continue;
                            const std::uint64_t mine =
                                progress[s].events
                                - report.calibrationEvents;
                            const double scaled =
                                static_cast<double>(mine)
                                * cfg.stragglerFactor;
                            if (scaled >= static_cast<double>(median))
                                continue;
                            warn("slave ", s, " is a straggler (",
                                 mine, " measurement events vs median ",
                                 median, ")",
                                 cfg.abandonStragglers
                                     ? "; abandoning it"
                                     : "");
                            report.status = SlaveStatus::Straggler;
                            if (cfg.abandonStragglers) {
                                report.abandoned = true;
                                abandonFlags[s].store(
                                    true, std::memory_order_relaxed);
                            }
                        }
                    }
                }
            }
            if (healthyCount() < cfg.minHealthySlaves) {
                warn("quorum lost: ", healthyCount(), " healthy slaves < ",
                     cfg.minHealthySlaves, " required");
                trip(TerminationReason::Degraded);
                break;
            }
            if (checkpointing
                && secondsSince(lastCheckpoint, now)
                       >= cfg.checkpointIntervalSeconds) {
                writeCheckpoint(cfg.checkpointPath, buildCheckpoint());
                lastCheckpoint = now;
            }
            if (cfg.progress
                && secondsSince(lastProgress, now)
                       >= cfg.progressIntervalSeconds) {
                // Under mtx, like the checkpoint write above: the
                // callback is a quick status-file rewrite.
                cfg.progress(buildProgress(now));
                lastProgress = now;
            }
        }
    }
    if (cfg.pool != nullptr) {
        // Pool threads outlive this run; wait for *these* slaves only.
        // wait_for (not wait) mirrors the monitor loop's tolerance of a
        // notify landing between predicate check and sleep.
        std::unique_lock<std::mutex> lock(mtx);
        while (activeSlaves.load(std::memory_order_relaxed) != 0)
            progressCv.wait_for(lock, std::chrono::milliseconds(10));
    }
    for (auto& thread : threads)
        thread.join();

    // Final reason when every slave exited on its own (drain/failure)
    // before anything tripped. No contention remains, but the helpers
    // expect the lock.
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!reasonSet) {
            if (healthyCount() < cfg.minHealthySlaves)
                trip(TerminationReason::Degraded);
            else if (aggregateSatisfied())
                trip(TerminationReason::Converged);
            else
                trip(TerminationReason::Drained);
        }
    }

    // --- Phase 4: quorum merge — checkpointed base plus every healthy
    // slave's histograms into the master's estimate.
    for (std::size_t i = 0; i < metricCount; ++i) {
        OutputMetric& masterMetric = master.stats().metric(i);
        // Weight conservation: every accepted observation of every merged
        // contributor must land in the master's sample, exactly once.
        std::uint64_t expected = masterMetric.acceptedCount();
        if (baseHist[i].has_value()) {
            masterMetric.absorbSample(baseAcc[i], *baseHist[i]);
            expected += baseAcc[i].count();
        }
        for (std::size_t s = 0; s < cfg.slaves; ++s) {
            if (!healthy(s))
                continue;
            const OutputMetric& slaveMetric = slaves[s]->stats().metric(i);
            // A slave cancelled mid-calibration has no histogram yet.
            if (slaveMetric.phase() == Phase::Warmup
                || slaveMetric.phase() == Phase::Calibration)
                continue;
            masterMetric.absorb(slaveMetric);
            expected += slaveMetric.acceptedCount();
        }
        BH_ENSURE(masterMetric.acceptedCount() == expected,
                  "quorum merge did not conserve sample weight for '",
                  masterMetric.specification().name, "': merged ",
                  masterMetric.acceptedCount(), " expected ", expected);
        BH_ENSURE(masterMetric.acceptedCount()
                      == masterMetric.histogram().count(),
                  "accumulator and histogram disagree after quorum merge");
        masterMetric.evaluateConvergence();
    }

    result.converged = master.stats().allConverged();
    result.healthySlaves = healthyCount();
    if (result.healthySlaves < cfg.minHealthySlaves) {
        // Quorum is policy, not statistics: an estimate built from
        // fewer healthy slaves than required is never reported as
        // converged, however large its sample.
        result.converged = false;
        reason = TerminationReason::Degraded;
    } else if (result.converged) {
        reason = TerminationReason::Converged;
    } else if (reason == TerminationReason::Converged) {
        // The aggregate was sufficient when tripped but a contributor
        // was excluded before the merge; the surviving sample fell
        // short, which is exactly a degraded outcome.
        reason = TerminationReason::Degraded;
    }
    result.termination = reason;
    result.degraded = result.healthySlaves < cfg.slaves;

    result.estimates = master.stats().estimates();

    // Timelines of every merged contributor. All slave threads have
    // joined (or drained from the pool), so the sims are quiescent; the
    // lock only satisfies the helpers' contract, like the block above.
    if (master.timeline() != nullptr) {
        std::lock_guard<std::mutex> lock(mtx);
        auto harvestTimeline = [](const SqsSimulation& sim,
                                  std::string label) {
            TimelineData data = sim.timeline()->harvest(
                sim.stepper() != nullptr ? sim.stepper()->now()
                                         : sim.engine().now());
            data.source = std::move(label);
            return data;
        };
        result.timelines.reserve(1 + cfg.slaves);
        result.timelines.push_back(harvestTimeline(master, "master"));
        for (std::size_t s = 0; s < cfg.slaves; ++s) {
            if (healthy(s)) {
                result.timelines.push_back(harvestTimeline(
                    *slaves[s], "slave-" + std::to_string(s)));
            }
        }
    }

    result.slaveCalibrationEvents.resize(cfg.slaves);
    result.slaveTotalEvents.resize(cfg.slaves);
    if (failuresPresent)
        result.failures = aggregateFailures;
    result.totalEvents = result.masterCalibrationEvents;
    for (std::size_t s = 0; s < cfg.slaves; ++s) {
        result.slaveCalibrationEvents[s] =
            result.slaveReports[s].calibrationEvents;
        result.slaveTotalEvents[s] = result.slaveReports[s].totalEvents;
        result.totalEvents += result.slaveReports[s].totalEvents;
    }

    // An unconverged run always leaves a final resumable snapshot, so
    // interruption by valve or quorum loss never discards the sample.
    if (checkpointing && !result.converged) {
        std::lock_guard<std::mutex> lock(mtx);
        ParallelCheckpoint cp = buildCheckpoint();
        // The published snapshots may lag the sims by part of a batch;
        // refresh them from the (now quiescent) slave simulations.
        cp.slaves.clear();
        for (std::size_t s = 0; s < cfg.slaves; ++s) {
            if (!healthy(s))
                continue;
            CheckpointSlave slave;
            slave.events = result.slaveReports[s].totalEvents;
            bool complete = true;
            for (std::size_t i = 0; i < metricCount; ++i) {
                const OutputMetric& metric = slaves[s]->stats().metric(i);
                if (metric.phase() == Phase::Warmup
                    || metric.phase() == Phase::Calibration) {
                    complete = false;
                    break;
                }
                CheckpointSample sample;
                const Accumulator& acc = metric.sampleAccumulator();
                sample.count = acc.count();
                sample.mean = acc.mean();
                sample.variance = acc.variance();
                sample.min = acc.min();
                sample.max = acc.max();
                sample.histogram = metric.histogram().serialize();
                slave.samples.push_back(std::move(sample));
            }
            if (complete)
                cp.slaves.push_back(std::move(slave));
        }
        writeCheckpoint(cfg.checkpointPath, cp);
    }

    result.wallSeconds = std::chrono::duration<double>(
                             clock::now() - wallStart)
                             .count();

    if (cfg.progress) {
        // Terminal snapshot: final per-slave outcomes and the merge
        // verdict — the record a status-file consumer is left with.
        ParallelProgressSnapshot snap;
        snap.phase = "merged";
        snap.converged = result.converged;
        snap.healthySlaves = result.healthySlaves;
        snap.totalEvents = result.totalEvents;
        snap.elapsedSeconds = result.wallSeconds;
        snap.slaves.resize(cfg.slaves);
        for (std::size_t s = 0; s < cfg.slaves; ++s) {
            snap.slaves[s].status = result.slaveReports[s].status;
            snap.slaves[s].abandoned = result.slaveReports[s].abandoned;
            snap.slaves[s].events = result.slaveReports[s].totalEvents;
        }
        cfg.progress(snap);
    }
    return result;
}

} // namespace bighouse
