#include "campaign/campaign.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/random.hh"
#include "core/experiment.hh"

namespace bighouse {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::uint64_t
derivePointSeed(std::uint64_t campaignSeed, std::uint64_t contentHash)
{
    // The epoch-mix idiom from parallel.cc: expand the discriminator
    // through golden-ratio SplitMix64, XOR into the root. Content-keyed
    // rather than index-keyed, so inserting an axis value never shifts
    // the seeds (and cache keys) of unrelated points.
    return campaignSeed
           ^ SplitMix64(contentHash * 0x9e3779b97f4a7c15ULL).next();
}

std::string
canonicalPointKey(const JsonValue& resolvedConfig, std::uint64_t seed,
                  std::size_t slaves)
{
    JsonValue::Object key;
    key.emplace("format", JsonValue(std::string("bighouse-point-key-v1")));
    key.emplace("config", resolvedConfig);
    // Decimal string, not a JSON number: derived seeds use the full
    // 64-bit word and a double would alias the low bits past 2^53.
    key.emplace("seed", JsonValue(std::to_string(seed)));
    key.emplace("slaves", JsonValue(static_cast<double>(slaves)));
    return JsonValue(std::move(key)).dump();
}

const std::vector<std::string_view>&
campaignConfigKeys()
{
    static const std::vector<std::string_view> keys = {
        "campaign", "base", "sweep", "pool", "seed", "cache",
    };
    return keys;
}

CampaignSpec
campaignSpecFromConfig(const Config& config, bool strict)
{
    if (strict) {
        rejectUnknownKeys(config.root(), campaignConfigKeys(),
                          "campaign config");
    }
    CampaignSpec spec;
    spec.name = config.getString("campaign", "campaign");
    const JsonValue* base = config.resolve("base");
    if (base == nullptr || !base->isObject())
        fatal("campaign config needs a 'base' experiment object");
    spec.base = *base;

    const JsonValue* sweep = config.resolve("sweep");
    if (sweep != nullptr) {
        if (strict)
            rejectUnknownKeys(*sweep, {"grid", "list"}, "campaign sweep");
        const JsonValue* grid = sweep->find("grid");
        if (grid != nullptr) {
            if (!grid->isObject())
                fatal("campaign sweep.grid must be an object of "
                      "path -> value-array");
            // JsonValue objects iterate in sorted key order, which makes
            // the axis order — and so the expansion order — a property
            // of the document, not of the parser.
            for (const auto& [path, values] : grid->asObject()) {
                if (!values.isArray() || values.asArray().empty())
                    fatal("sweep axis '", path,
                          "' must be a non-empty array of values");
                SweepAxis axis;
                axis.path = path;
                axis.values = values.asArray();
                spec.grid.push_back(std::move(axis));
            }
        }
        const JsonValue* list = sweep->find("list");
        if (list != nullptr) {
            if (!list->isArray())
                fatal("campaign sweep.list must be an array of override "
                      "objects");
            for (const JsonValue& entry : list->asArray()) {
                if (!entry.isObject())
                    fatal("campaign sweep.list entries must be objects "
                          "of path -> value");
                spec.list.push_back(entry);
            }
        }
    }

    const JsonValue* pool = config.resolve("pool");
    if (pool != nullptr && strict)
        rejectUnknownKeys(*pool, {"slaves", "pointSlaves"},
                          "campaign pool");
    spec.poolSlaves =
        static_cast<std::size_t>(config.getInt("pool.slaves", 2));
    spec.pointSlaves =
        static_cast<std::size_t>(config.getInt("pool.pointSlaves", 0));
    if (spec.poolSlaves == 0)
        fatal("campaign pool.slaves must be >= 1");
    if (spec.pointSlaves > spec.poolSlaves)
        fatal("campaign pool.pointSlaves (", spec.pointSlaves,
              ") exceeds pool.slaves (", spec.poolSlaves, ")");
    spec.seed = static_cast<std::uint64_t>(config.getInt("seed", 1));
    spec.cacheDir = config.getString("cache", "");
    if (spec.cacheDir.empty())
        fatal("campaign config needs a 'cache' directory path");
    return spec;
}

namespace {

/** Human-stable rendering of an axis value for manifests and reports. */
std::string
renderAxisValue(const JsonValue& value)
{
    if (value.isString())
        return value.asString();
    if (value.isBool())
        return value.asBool() ? "true" : "false";
    if (value.isNumber()) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.12g", value.asNumber());
        return buf;
    }
    return value.dump();
}

/** Apply one override; the reserved "slaves" path targets the point. */
void
applyOverride(SweepPoint& point, const std::string& path,
              const JsonValue& value)
{
    if (path == "slaves") {
        if (!value.isNumber() || value.asNumber() < 0)
            fatal("sweep axis 'slaves' needs non-negative numeric "
                  "values");
        point.slaves = static_cast<std::size_t>(value.asNumber());
    } else {
        jsonSetPath(point.config, path, value);
    }
    point.axes[path] = renderAxisValue(value);
}

} // namespace

std::vector<SweepPoint>
expandCampaign(const CampaignSpec& spec, bool strict)
{
    if (!spec.base.isObject())
        fatal("campaign base config must be a JSON object");
    std::vector<SweepPoint> points;

    std::uint64_t gridSize = 1;
    for (const SweepAxis& axis : spec.grid) {
        if (axis.values.empty())
            fatal("sweep axis '", axis.path, "' has no values");
        gridSize *= axis.values.size();
        if (gridSize > 100000)
            fatal("campaign grid exceeds 100000 points; shard it");
    }

    // Cartesian product, first axis slowest (odometer order).
    for (std::uint64_t flat = 0; flat < gridSize; ++flat) {
        SweepPoint point;
        point.config = spec.base;
        point.slaves = spec.pointSlaves;
        std::uint64_t remainder = flat;
        std::uint64_t stride = gridSize;
        for (const SweepAxis& axis : spec.grid) {
            stride /= axis.values.size();
            const std::size_t pick =
                static_cast<std::size_t>(remainder / stride);
            remainder %= stride;
            applyOverride(point, axis.path, axis.values[pick]);
        }
        points.push_back(std::move(point));
    }

    // Explicit list entries ride after the grid.
    for (const JsonValue& entry : spec.list) {
        SweepPoint point;
        point.config = spec.base;
        point.slaves = spec.pointSlaves;
        for (const auto& [path, value] : entry.asObject())
            applyOverride(point, path, value);
        points.push_back(std::move(point));
    }

    // Resolve identity: validate, then key + seed from content only.
    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepPoint& point = points[i];
        point.index = i;
        // A typo'd axis path (say "loadfactor") lands here as an unknown
        // top-level key in the resolved config and fails the whole
        // campaign before any point simulates.
        (void)Experiment::specFromConfig(Config(point.config), strict);
        const std::string content =
            canonicalPointKey(point.config, 0, point.slaves);
        point.seed = derivePointSeed(spec.seed, fnv1a64(content));
        point.key =
            canonicalPointKey(point.config, point.seed, point.slaves);
        point.keyHash = fnv1a64(point.key);
    }
    return points;
}

} // namespace bighouse
