/**
 * @file
 * CampaignRunner — the work-queue scheduler behind `bh_campaign run`.
 *
 * Expansion (campaign.hh) turns a CampaignSpec into an ordered deque of
 * SweepPoints; the runner is the execution layer on top:
 *
 *  - a content-addressed on-disk cache (`<cacheDir>/<hash>.json`, keyed
 *    by the canonical hash of the fully-resolved point config + seed)
 *    answers already-converged points without simulating — re-running a
 *    campaign, or resuming one after a kill, skips every cached point;
 *  - uncached serial points are dispatched across ONE shared SlavePool
 *    (point-level parallelism: independent sweep points are the
 *    embarrassingly parallel unit of a sweep);
 *  - uncached parallel points (slaves > 1) run one at a time through the
 *    full ParallelRunner supervision + quorum-merge protocol on the SAME
 *    pool, with a per-point checkpoint file under the cache directory so
 *    an interrupted point resumes through the PR-1 checkpoint machinery;
 *  - a `bighouse-campaign-v1` manifest (results_io.hh) is rewritten
 *    atomically after every point completes — the resumable ledger of
 *    how far the campaign got.
 *
 * Per-point results are bit-reproducible for serial points (fixed
 * derived seed, single stream); parallel points are statistically — not
 * bit — reproducible (their stopping batch depends on thread timing),
 * which is why the example campaigns sweep serial points and use the
 * pool for point-level parallelism.
 */

#ifndef BIGHOUSE_CAMPAIGN_RUNNER_HH
#define BIGHOUSE_CAMPAIGN_RUNNER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "core/report.hh"
#include "core/results_io.hh"

namespace bighouse {

struct CampaignReport;

/** Execution knobs (CLI flags, test harness hooks). */
struct CampaignOptions
{
    /// Expand, probe the cache, and report — simulate nothing.
    bool dryRun = false;
    /// Reject unknown config keys (the --lax flag clears this).
    bool strict = true;
    /// Execute at most this many uncached points, leaving the rest
    /// pending (0 = no limit). The deterministic stand-in for "killed
    /// mid-sweep" in tests and the CI forced-resume smoke.
    std::size_t maxPoints = 0;
    /// Override the spec's campaign root seed (the CLI's --seed).
    std::optional<std::uint64_t> seed;
    /// Live progress surface (the CLI's --status-file / TTY line):
    /// called under the runner's ledger lock with the current report
    /// after scheduling (points marked Running) and after every point
    /// completes; `terminal` is true exactly once, for the final report.
    /// Keep it quick — point workers block on the ledger while it runs.
    std::function<void(const CampaignReport&, bool terminal)> progress;
};

/** What happened to one sweep point this invocation. */
struct PointOutcome
{
    PointStatus status = PointStatus::Pending;
    SqsResult result;        ///< valid when status is Cached or Ran
    std::string resultPath;  ///< cache entry (when a result exists)
    std::string error;       ///< failure text when status == Failed
};

/** Outcome of one campaign invocation. */
struct CampaignReport
{
    std::vector<PointOutcome> outcomes;  ///< indexed like points()
    std::size_t cached = 0;   ///< served from the cache
    std::size_t ran = 0;      ///< simulated this invocation
    std::size_t failed = 0;
    std::size_t pending = 0;  ///< left for a later invocation
    double wallSeconds = 0.0;

    /** Every point has a result (nothing failed or deferred). */
    bool complete() const { return failed == 0 && pending == 0; }
};

/** Schedules one campaign over a shared slave pool + result cache. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignSpec spec, CampaignOptions options = {});

    const CampaignSpec& specification() const { return spec; }

    /** The expanded sweep, in execution order. */
    const std::vector<SweepPoint>& points() const { return expanded; }

    /**
     * Probe the cache without simulating: every point comes back Cached
     * (result loaded) or Pending. The engine behind --dry-run, `status`,
     * and `export`.
     */
    CampaignReport plan() const;

    /**
     * Execute the campaign: plan, then run every pending point (or
     * return the plan unchanged when options.dryRun). Writes/refreshes
     * the manifest after every completed point.
     */
    CampaignReport run();

    /// Cache layout (exposed for tools and tests).
    std::string resultPath(const SweepPoint& point) const;
    std::string checkpointPath(const SweepPoint& point) const;
    std::string manifestPath() const;

  private:
    bool probe(const SweepPoint& point, SqsResult* result) const;
    void writeCacheEntry(const SweepPoint& point,
                         const SqsResult& result) const;
    CampaignManifest buildManifest(const CampaignReport& report) const;

    CampaignSpec spec;
    CampaignOptions opts;
    std::vector<SweepPoint> expanded;
};

/**
 * Plan/status rendering: one row per point (index, axes, seed, key hash,
 * status, convergence) — what --dry-run and `bh_campaign status` print.
 */
TextTable campaignStatusTable(const std::vector<SweepPoint>& points,
                              const CampaignReport& report);

/**
 * Result export: one row per (point, metric), points in expansion order
 * and metrics name-sorted, so repeated exports diff cleanly.
 */
TextTable campaignExportTable(const std::vector<SweepPoint>& points,
                              const CampaignReport& report);

/** JSON export: per-point axes, seed, status, and name-sorted result. */
JsonValue campaignExportJson(const std::vector<SweepPoint>& points,
                             const CampaignReport& report);

} // namespace bighouse

#endif // BIGHOUSE_CAMPAIGN_RUNNER_HH
