/**
 * @file
 * Declarative parameter sweeps — the campaign layer.
 *
 * BigHouse's evaluation *is* a set of sweeps (Fig. 5's Cv × load grid,
 * Fig. 7's cluster sizes, Fig. 8/9's accuracy grids); a CampaignSpec
 * makes that a first-class, config-file-driven object instead of a
 * bespoke bench binary per figure. A campaign names a base experiment
 * config plus sweep axes; expansion overlays each axis combination onto
 * the base document and yields an ordered list of SweepPoints, each with
 * a canonical content key, a derived root seed, and a fully-resolved
 * experiment config that parses on its own.
 *
 * Determinism contract: a point's seed and cache key depend only on its
 * resolved content (config + slave count) and the campaign root seed —
 * never on expansion order, scheduling, or which pool worker runs it —
 * so any point is bit-reproducible in isolation and a cache entry keyed
 * this way can be trusted across interrupted and re-run campaigns.
 */

#ifndef BIGHOUSE_CAMPAIGN_CAMPAIGN_HH
#define BIGHOUSE_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "config/config.hh"
#include "config/json.hh"

namespace bighouse {

/** One sweep dimension: a dotted config path and its values. */
struct SweepAxis
{
    /// Dotted path into the experiment config ("loadFactor",
    /// "workload.service.cv", "capping.budgetFraction", ...). The
    /// reserved path "slaves" sets the point's slave count instead of a
    /// config key (0/1 = serial point, >1 = parallel via the shared
    /// pool).
    std::string path;
    std::vector<JsonValue> values;
};

/** Parsed campaign description (see docs/campaigns.md for the grammar). */
struct CampaignSpec
{
    std::string name;
    JsonValue base;              ///< base experiment config (object)
    std::vector<SweepAxis> grid; ///< cartesian product, in path order
    /// Explicit extra points: each entry is an object of dotted-path ->
    /// value overrides applied to the base config.
    std::vector<JsonValue> list;
    std::uint64_t seed = 1;      ///< campaign root seed
    std::size_t poolSlaves = 2;  ///< shared slave-pool width
    std::size_t pointSlaves = 0; ///< default per-point slave count
    std::string cacheDir;        ///< content-addressed result cache
};

/** One fully-resolved point of a sweep. */
struct SweepPoint
{
    std::size_t index = 0;       ///< expansion order
    JsonValue config;            ///< resolved experiment config (object)
    /// Sweep coordinates: axis path -> rendered value (sorted by path).
    std::map<std::string, std::string> axes;
    std::size_t slaves = 0;      ///< 0/1 = serial; >1 = parallel
    std::uint64_t seed = 0;      ///< derived via derivePointSeed()
    std::string key;             ///< canonical content key
    std::uint64_t keyHash = 0;   ///< fnv1a64(key); names the cache entry
};

/** FNV-1a 64-bit hash (content addressing for cache entries). */
std::uint64_t fnv1a64(std::string_view bytes);

/** 16-hex-digit rendering of a 64-bit hash (cache file stem). */
std::string hashHex(std::uint64_t hash);

/**
 * Derive a point's root seed from the campaign seed and the hash of the
 * point's resolved content, through the same golden-ratio SplitMix64
 * mixing the parallel runtime uses for resume epochs: points with any
 * config difference draw statistically independent streams, while the
 * same point re-expanded later (or after a kill) gets the same seed —
 * the bit-reproducibility anchor of the result cache.
 */
std::uint64_t derivePointSeed(std::uint64_t campaignSeed,
                              std::uint64_t contentHash);

/**
 * The canonical cache-key string of a resolved point: a compact JSON
 * document over the resolved config, seed, and slave count. Any field or
 * seed change produces a different key (and so a cache miss); key-order
 * stability comes from JsonValue's sorted object keys.
 */
std::string canonicalPointKey(const JsonValue& resolvedConfig,
                              std::uint64_t seed, std::size_t slaves);

/**
 * Parse a campaign config file. `strict` rejects unknown keys at every
 * level of the campaign grammar (base configs are validated during
 * expansion instead, where axis overlays have already been applied).
 */
CampaignSpec campaignSpecFromConfig(const Config& config,
                                    bool strict = true);

/** Top-level keys campaignSpecFromConfig() understands. */
const std::vector<std::string_view>& campaignConfigKeys();

/**
 * Expand a campaign into its ordered sweep points: the grid axes'
 * cartesian product (first axis slowest) followed by the explicit list
 * entries. Every resolved config is validated through
 * Experiment::specFromConfig (strict unless `strict` is false), so a
 * typo'd axis path fails here — before anything simulates.
 */
std::vector<SweepPoint> expandCampaign(const CampaignSpec& spec,
                                       bool strict = true);

} // namespace bighouse

#endif // BIGHOUSE_CAMPAIGN_CAMPAIGN_HH
