#include "campaign/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "core/experiment.hh"
#include "parallel/parallel.hh"
#include "parallel/slave_pool.hh"

namespace bighouse {

namespace {

constexpr const char* kResultFormat = "bighouse-point-result-v1";

/** Recount the per-status totals from the outcomes. */
void
recount(CampaignReport& report)
{
    report.cached = report.ran = report.failed = report.pending = 0;
    for (const PointOutcome& outcome : report.outcomes) {
        switch (outcome.status) {
          // Running counts as pending: it has no result yet, and a
          // report is only complete() once every Running point resolved
          // to Cached/Ran/Failed (terminal totals never change).
          case PointStatus::Pending: ++report.pending; break;
          case PointStatus::Running: ++report.pending; break;
          case PointStatus::Cached: ++report.cached; break;
          case PointStatus::Ran: ++report.ran; break;
          case PointStatus::Failed: ++report.failed; break;
        }
    }
}

/** Read a whole file; false when it cannot be opened. */
bool
readFile(const std::string& path, std::string* text)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *text = buf.str();
    return true;
}

SqsResult
fromParallel(const ParallelResult& parallel)
{
    SqsResult result;
    result.converged = parallel.converged;
    result.termination = parallel.termination;
    result.events = parallel.totalEvents;
    result.simulatedTime = 0;  // per-slave clocks do not aggregate
    result.wallSeconds = parallel.wallSeconds;
    result.estimates = parallel.estimates;
    result.failures = parallel.failures;
    return result;
}

/** Union of axis paths across all points, sorted (stable columns). */
std::vector<std::string>
axisColumns(const std::vector<SweepPoint>& points)
{
    std::set<std::string> paths;
    for (const SweepPoint& point : points)
        for (const auto& [path, value] : point.axes)
            paths.insert(path);
    return {paths.begin(), paths.end()};
}

std::string
axisCell(const SweepPoint& point, const std::string& path)
{
    const auto it = point.axes.find(path);
    return it == point.axes.end() ? "-" : it->second;
}

} // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec_, CampaignOptions options)
    : spec(std::move(spec_)), opts(options)
{
    if (opts.seed.has_value())
        spec.seed = *opts.seed;
    expanded = expandCampaign(spec, opts.strict);
}

std::string
CampaignRunner::resultPath(const SweepPoint& point) const
{
    return spec.cacheDir + "/" + hashHex(point.keyHash) + ".json";
}

std::string
CampaignRunner::checkpointPath(const SweepPoint& point) const
{
    return spec.cacheDir + "/" + hashHex(point.keyHash) + ".ckpt.json";
}

std::string
CampaignRunner::manifestPath() const
{
    return spec.cacheDir + "/manifest.json";
}

bool
CampaignRunner::probe(const SweepPoint& point, SqsResult* result) const
{
    std::string text;
    const std::string path = resultPath(point);
    if (!readFile(path, &text))
        return false;
    const JsonParseResult parsed = parseJson(text);
    if (!parsed.ok) {
        warn("ignoring unreadable cache entry ", path, ": ", parsed.error);
        return false;
    }
    const JsonValue* format = parsed.value.find("format");
    const JsonValue* key = parsed.value.find("key");
    if (format == nullptr || !format->isString()
        || format->asString() != kResultFormat || key == nullptr
        || !key->isString()) {
        warn("ignoring cache entry with unknown format: ", path);
        return false;
    }
    // Full key-string equality, not just the hash the filename carries:
    // a (vanishingly unlikely) FNV collision degrades to a cache miss
    // instead of serving another point's result.
    if (key->asString() != point.key)
        return false;
    const JsonValue* payload = parsed.value.find("result");
    if (payload == nullptr) {
        warn("ignoring cache entry without a result: ", path);
        return false;
    }
    *result = resultFromJson(*payload);
    return true;
}

void
CampaignRunner::writeCacheEntry(const SweepPoint& point,
                                const SqsResult& result) const
{
    JsonValue::Object obj;
    obj.emplace("format", JsonValue(std::string(kResultFormat)));
    obj.emplace("key", JsonValue(point.key));
    obj.emplace("keyHash", JsonValue(hashHex(point.keyHash)));
    obj.emplace("result", resultToJson(result));
    const std::string path = resultPath(point);
    // Atomic write-then-rename, like checkpoints and manifests: a kill
    // mid-write can never leave a truncated entry a later resume would
    // have to distrust.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            fatal("cannot open ", tmp, " for writing");
        out << JsonValue(std::move(obj)).dump(2) << "\n";
        if (!out)
            fatal("write error on ", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename ", tmp, " to ", path);
}

CampaignManifest
CampaignRunner::buildManifest(const CampaignReport& report) const
{
    CampaignManifest manifest;
    manifest.campaign = spec.name;
    manifest.rootSeed = spec.seed;
    manifest.points.reserve(expanded.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        const SweepPoint& point = expanded[i];
        const PointOutcome& outcome = report.outcomes[i];
        ManifestPoint entry;
        entry.index = point.index;
        entry.key = point.key;
        entry.keyHash = hashHex(point.keyHash);
        entry.seed = point.seed;
        entry.slaves = point.slaves;
        entry.status = outcome.status;
        entry.axes = point.axes;
        if (outcome.status == PointStatus::Cached
            || outcome.status == PointStatus::Ran) {
            entry.converged = outcome.result.converged;
            entry.backend = simBackendName(outcome.result.backend);
            entry.events = outcome.result.events;
            entry.wallSeconds = outcome.result.wallSeconds;
        }
        manifest.points.push_back(std::move(entry));
    }
    return manifest;
}

CampaignReport
CampaignRunner::plan() const
{
    CampaignReport report;
    report.outcomes.resize(expanded.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        PointOutcome& outcome = report.outcomes[i];
        if (probe(expanded[i], &outcome.result)) {
            outcome.status = PointStatus::Cached;
            outcome.resultPath = resultPath(expanded[i]);
        }
    }
    recount(report);
    return report;
}

CampaignReport
CampaignRunner::run()
{
    const auto start = std::chrono::steady_clock::now();
    CampaignReport report = plan();
    if (opts.dryRun)
        return report;  // plan only — touch nothing on disk

    std::filesystem::create_directories(spec.cacheDir);

    // The misses, in expansion order; maxPoints truncates here — the
    // deterministic "killed mid-sweep" for resume tests and CI.
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < expanded.size(); ++i)
        if (report.outcomes[i].status == PointStatus::Pending)
            misses.push_back(i);
    if (opts.maxPoints != 0 && misses.size() > opts.maxPoints)
        misses.resize(opts.maxPoints);

    std::mutex ledger;  // guards report.outcomes + manifest writes
    const auto finishPoint = [&](std::size_t index, PointOutcome outcome) {
        std::lock_guard<std::mutex> lock(ledger);
        report.outcomes[index] = std::move(outcome);
        recount(report);
        writeManifest(manifestPath(), buildManifest(report));
        if (opts.progress)
            opts.progress(report, false);
    };

    {
        std::lock_guard<std::mutex> lock(ledger);
        // Points this invocation will execute show as Running in the
        // manifest and the progress surface until they finish.
        for (const std::size_t index : misses)
            report.outcomes[index].status = PointStatus::Running;
        recount(report);
        writeManifest(manifestPath(), buildManifest(report));
        if (opts.progress)
            opts.progress(report, false);
    }

    // One shared pool for the whole campaign: serial points fan out
    // across it (points are the embarrassingly parallel unit of a
    // sweep); parallel points then run through ParallelRunner on the
    // same workers.
    SlavePool pool(spec.poolSlaves);

    std::vector<std::size_t> parallelMisses;
    for (const std::size_t index : misses) {
        if (expanded[index].slaves > 1) {
            parallelMisses.push_back(index);
            continue;
        }
        pool.submit([this, index, &finishPoint] {
            const SweepPoint& point = expanded[index];
            PointOutcome outcome;
            try {
                const Experiment experiment(Experiment::specFromConfig(
                    Config(point.config), opts.strict));
                outcome.result = experiment.run(point.seed);
                writeCacheEntry(point, outcome.result);
                outcome.status = PointStatus::Ran;
                outcome.resultPath = resultPath(point);
            } catch (const std::exception& e) {
                outcome.status = PointStatus::Failed;
                outcome.error = e.what();
            }
            finishPoint(index, std::move(outcome));
        });
    }
    pool.drain();

    // Parallel points one at a time: each runs the full master/slave
    // protocol with its slaves as tasks on the shared pool, and a
    // per-point checkpoint so an interrupted point resumes instead of
    // restarting.
    for (const std::size_t index : parallelMisses) {
        const SweepPoint& point = expanded[index];
        PointOutcome outcome;
        try {
            auto experiment =
                std::make_shared<Experiment>(Experiment::specFromConfig(
                    Config(point.config), opts.strict));
            ParallelConfig pcfg;
            pcfg.slaves = point.slaves;
            pcfg.sqs = experiment->specification().sqs;
            pcfg.pool = &pool;
            pcfg.checkpointPath = checkpointPath(point);
            ParallelRunner runner(
                [experiment](SqsSimulation& sim) {
                    experiment->buildInto(sim);
                },
                pcfg);
            ParallelResult parallel;
            if (std::filesystem::exists(pcfg.checkpointPath))
                parallel = runner.resume(readCheckpoint(pcfg.checkpointPath));
            else
                parallel = runner.run(point.seed);
            outcome.result = fromParallel(parallel);
            // Parallel estimates depend on thread timing, so only a
            // converged result is worth caching; an unconverged one
            // leaves its checkpoint behind for the next invocation.
            if (parallel.converged) {
                writeCacheEntry(point, outcome.result);
                outcome.status = PointStatus::Ran;
                outcome.resultPath = resultPath(point);
                std::error_code ec;
                std::filesystem::remove(pcfg.checkpointPath, ec);
            } else {
                outcome.status = PointStatus::Failed;
                outcome.error =
                    std::string("parallel point stopped unconverged (")
                    + terminationReasonName(parallel.termination)
                    + "); checkpoint kept for resume";
            }
        } catch (const std::exception& e) {
            outcome.status = PointStatus::Failed;
            outcome.error = e.what();
        }
        finishPoint(index, std::move(outcome));
    }

    recount(report);
    writeManifest(manifestPath(), buildManifest(report));
    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start)
            .count();
    if (opts.progress)
        opts.progress(report, true);
    return report;
}

TextTable
campaignStatusTable(const std::vector<SweepPoint>& points,
                    const CampaignReport& report)
{
    const std::vector<std::string> axes = axisColumns(points);
    std::vector<std::string> header = {"point"};
    header.insert(header.end(), axes.begin(), axes.end());
    header.insert(header.end(),
                  {"slaves", "seed", "key", "status", "converged",
                   "backend", "events"});
    TextTable table(std::move(header));
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint& point = points[i];
        const PointOutcome& outcome = report.outcomes[i];
        std::vector<std::string> row = {std::to_string(point.index)};
        for (const std::string& path : axes)
            row.push_back(axisCell(point, path));
        row.push_back(std::to_string(point.slaves));
        row.push_back(std::to_string(point.seed));
        row.push_back(hashHex(point.keyHash));
        row.push_back(pointStatusName(outcome.status));
        const bool haveResult = outcome.status == PointStatus::Cached
                                || outcome.status == PointStatus::Ran;
        row.push_back(!haveResult ? "-"
                      : outcome.result.converged ? "yes"
                                                 : "no");
        row.push_back(haveResult
                          ? simBackendName(outcome.result.backend)
                          : "-");
        row.push_back(haveResult
                          ? std::to_string(outcome.result.events)
                          : "-");
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
campaignExportTable(const std::vector<SweepPoint>& points,
                    const CampaignReport& report)
{
    const std::vector<std::string> axes = axisColumns(points);
    std::vector<std::string> header = {"point"};
    header.insert(header.end(), axes.begin(), axes.end());
    header.insert(header.end(),
                  {"seed", "converged", "metric", "mean", "mean_halfwidth",
                   "stddev", "accepted", "q", "q_value", "q_lower",
                   "q_upper"});
    TextTable table(std::move(header));
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint& point = points[i];
        const PointOutcome& outcome = report.outcomes[i];
        if (outcome.status != PointStatus::Cached
            && outcome.status != PointStatus::Ran) {
            continue;
        }
        std::vector<std::string> prefix = {std::to_string(point.index)};
        for (const std::string& path : axes)
            prefix.push_back(axisCell(point, path));
        prefix.push_back(std::to_string(point.seed));
        prefix.push_back(outcome.result.converged ? "yes" : "no");
        // Metrics in name-sorted order: exports diff cleanly across
        // runs and across configs that register metrics differently.
        for (const MetricEstimate& metric :
             sortedEstimates(outcome.result.estimates)) {
            const auto metricRow = [&](const std::vector<std::string>&
                                           tail) {
                std::vector<std::string> row = prefix;
                row.push_back(metric.name);
                row.push_back(formatG(metric.mean));
                row.push_back(formatG(metric.meanHalfWidth));
                row.push_back(formatG(metric.stddev));
                row.push_back(std::to_string(metric.accepted));
                row.insert(row.end(), tail.begin(), tail.end());
                table.addRow(std::move(row));
            };
            if (metric.quantiles.empty()) {
                metricRow({"-", "-", "-", "-"});
            } else {
                for (const QuantileEstimate& quantile : metric.quantiles)
                    metricRow({formatG(quantile.q),
                               formatG(quantile.value),
                               formatG(quantile.lower),
                               formatG(quantile.upper)});
            }
        }
    }
    return table;
}

JsonValue
campaignExportJson(const std::vector<SweepPoint>& points,
                   const CampaignReport& report)
{
    JsonValue::Array exported;
    exported.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint& point = points[i];
        const PointOutcome& outcome = report.outcomes[i];
        JsonValue::Object obj;
        obj.emplace("point", JsonValue(static_cast<double>(point.index)));
        JsonValue::Object axes;
        for (const auto& [path, value] : point.axes)
            axes.emplace(path, JsonValue(value));
        obj.emplace("axes", JsonValue(std::move(axes)));
        obj.emplace("seed", JsonValue(std::to_string(point.seed)));
        obj.emplace("slaves",
                    JsonValue(static_cast<double>(point.slaves)));
        obj.emplace("keyHash", JsonValue(hashHex(point.keyHash)));
        obj.emplace("status", JsonValue(std::string(
                                  pointStatusName(outcome.status))));
        if (outcome.status == PointStatus::Cached
            || outcome.status == PointStatus::Ran) {
            SqsResult sorted = outcome.result;
            sorted.estimates = sortedEstimates(std::move(sorted.estimates));
            obj.emplace("result", resultToJson(sorted));
        } else {
            obj.emplace("result", JsonValue(nullptr));
            if (!outcome.error.empty())
                obj.emplace("error", JsonValue(outcome.error));
        }
        exported.emplace_back(std::move(obj));
    }
    JsonValue::Object root;
    root.emplace("format",
                 JsonValue(std::string("bighouse-campaign-export-v1")));
    root.emplace("points", JsonValue(std::move(exported)));
    return JsonValue(std::move(root));
}

} // namespace bighouse
