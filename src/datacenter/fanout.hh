/**
 * @file
 * Partition/aggregate (fan-out) request topology.
 *
 * The paper's shipped workloads "all model simple client-server roundtrip
 * interactions. The BigHouse object model must be extended if a user
 * wishes to model a workload with more complicated communication
 * patterns" — this is that extension for the most important pattern in
 * the paper's own domain: a Web-search front-end fans each query out to
 * every leaf and can only respond when the *slowest* leaf replies, so
 * tail latency amplifies with cluster width ("tail at scale").
 */

#ifndef BIGHOUSE_DATACENTER_FANOUT_HH
#define BIGHOUSE_DATACENTER_FANOUT_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/random.hh"
#include "distribution/distribution.hh"
#include "queueing/server.hh"
#include "sim/engine.hh"

namespace bighouse {

/** A front-end over N leaf servers with all-leaf fan-out per request. */
class FanOutCluster : public TaskAcceptor
{
  public:
    /**
     * @param engine simulation to build in
     * @param leaves number of leaf servers
     * @param coresPerLeaf cores per leaf
     * @param leafService per-leaf sub-task demand distribution (each leaf
     *        draws independently — shards do unequal work)
     * @param rng stream for the per-leaf demand draws
     */
    FanOutCluster(Engine& engine, unsigned leaves, unsigned coresPerLeaf,
                  DistPtr leafService, Rng rng);

    /**
     * Accept a front-end request: one sub-task per leaf; the request
     * completes when every leaf's sub-task does. The request's own
     * `size` is ignored (leaf demands are drawn per leaf).
     */
    void accept(Task request) override;

    /** Fires once per request, when its last leaf response arrives. */
    void setCompletionHandler(Server::CompletionHandler handler);

    unsigned leafCount() const { return static_cast<unsigned>(leaves.size()); }

    Server& leaf(std::size_t index);

    /** Requests fully answered. */
    std::uint64_t completedCount() const { return completedRequests; }

    /** Requests accepted. */
    std::uint64_t arrivedCount() const { return arrivedRequests; }

    /** Requests still waiting on at least one leaf. */
    std::size_t inFlight() const { return pending.size(); }

  private:
    struct PendingRequest
    {
        Task request;
        unsigned remainingLeaves;
    };

    /** One leaf finished a sub-task belonging to `requestId`. */
    void leafCompleted(std::uint64_t requestId);

    Engine& engine;
    std::vector<std::unique_ptr<Server>> leaves;
    DistPtr leafService;
    Rng rng;
    Server::CompletionHandler onComplete;
    std::unordered_map<std::uint64_t, PendingRequest> pending;
    std::uint64_t arrivedRequests = 0;
    std::uint64_t completedRequests = 0;
};

} // namespace bighouse

#endif // BIGHOUSE_DATACENTER_FANOUT_HH
