#include "datacenter/cluster.hh"

#include "base/logging.hh"

namespace bighouse {

Cluster::Cluster(Engine& engine, ClusterSpec spec, Rng rng)
    : spec(spec)
{
    if (spec.serverCount == 0)
        fatal("Cluster needs at least one server");
    servers.reserve(spec.serverCount);
    for (std::size_t i = 0; i < spec.serverCount; ++i) {
        servers.push_back(
            std::make_unique<Server>(engine, spec.coresPerServer));
    }
    balancer = std::make_unique<LoadBalancer>(serverPointers(),
                                              spec.dispatch, rng);
}

Server&
Cluster::server(std::size_t index)
{
    BH_ASSERT(index < servers.size(), "server index out of range");
    return *servers[index];
}

std::vector<Server*>
Cluster::serverPointers()
{
    std::vector<Server*> pointers;
    pointers.reserve(servers.size());
    for (const auto& server : servers)
        pointers.push_back(server.get());
    return pointers;
}

void
Cluster::setCompletionHandler(const Server::CompletionHandler& handler)
{
    for (const auto& server : servers)
        server->setCompletionHandler(handler);
}

std::uint64_t
Cluster::totalCompleted() const
{
    std::uint64_t total = 0;
    for (const auto& server : servers)
        total += server->completedCount();
    return total;
}

std::size_t
Cluster::totalOutstanding() const
{
    std::size_t total = 0;
    for (const auto& server : servers)
        total += server->outstanding();
    return total;
}

double
Cluster::averageUtilization(Time elapsed)
{
    if (elapsed <= 0)
        return 0.0;
    double occupied = 0.0;
    for (const auto& server : servers)
        occupied += server->occupiedCoreSeconds();
    const double capacity = static_cast<double>(servers.size())
                            * static_cast<double>(spec.coresPerServer)
                            * elapsed;
    return occupied / capacity;
}

} // namespace bighouse
