/**
 * @file
 * Cluster: the aggregate object of the BigHouse hierarchy ("an
 * object-oriented hierarchy to represent various parts of the data center
 * such as servers, racks, etc."). Owns N identical servers and,
 * optionally, a front-end load balancer.
 */

#ifndef BIGHOUSE_DATACENTER_CLUSTER_HH
#define BIGHOUSE_DATACENTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "datacenter/load_balancer.hh"
#include "queueing/server.hh"
#include "sim/engine.hh"

namespace bighouse {

/** Shape of a homogeneous cluster. */
struct ClusterSpec
{
    std::size_t serverCount = 1;
    unsigned coresPerServer = 4;  ///< the Sec. 4.1 study uses quad-cores
    Dispatch dispatch = Dispatch::Random;
};

/** N identical servers behind one dispatch point. */
class Cluster
{
  public:
    /**
     * @param engine simulation the servers live in
     * @param spec shape
     * @param rng stream for the balancer's random dispatch
     */
    Cluster(Engine& engine, ClusterSpec spec, Rng rng);

    /** Front door: the balancer as a TaskAcceptor. */
    TaskAcceptor& intake() { return *balancer; }

    /** Number of servers. */
    std::size_t size() const { return servers.size(); }

    Server& server(std::size_t index);

    /** Non-owning pointers to all servers (coordinator wiring). */
    std::vector<Server*> serverPointers();

    /** Install one completion handler on every server. */
    void setCompletionHandler(const Server::CompletionHandler& handler);

    /** Sum of completed tasks across servers. */
    std::uint64_t totalCompleted() const;

    /** Sum of outstanding tasks across servers. */
    std::size_t totalOutstanding() const;

    /** Cluster-average utilization since t=0 (occupied / capacity). */
    double averageUtilization(Time elapsed);

  private:
    std::vector<std::unique_ptr<Server>> servers;
    std::unique_ptr<LoadBalancer> balancer;
    ClusterSpec spec;
};

} // namespace bighouse

#endif // BIGHOUSE_DATACENTER_CLUSTER_HH
