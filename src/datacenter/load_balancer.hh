/**
 * @file
 * Task routing across a set of servers. BigHouse is "best suited for
 * studies investigating load balancing, power management, resource
 * allocation, hardware provisioning" — the balancer is the load-balancing
 * building block: random, round-robin, or join-shortest-queue dispatch.
 *
 * The balancer is *health-aware*: backends marked down are ejected from
 * every dispatch discipline and re-admitted on repair. Health can be
 * wired instantly (a FailureProcess state handler) or through a
 * HealthChecker that probes on an interval, so detection lags failure
 * the way a real health-check loop does. When every backend is down,
 * tasks flow to the overflow handler (the source's retry path) or are
 * counted lost — they never hit a modulo-by-zero.
 */

#ifndef BIGHOUSE_DATACENTER_LOAD_BALANCER_HH
#define BIGHOUSE_DATACENTER_LOAD_BALANCER_HH

#include <string_view>
#include <vector>

#include "base/random.hh"
#include "queueing/server.hh"
#include "queueing/task.hh"
#include "sim/engine.hh"

namespace bighouse {

/**
 * Dispatch disciplines. PowerOfTwo samples two servers uniformly and
 * routes to the less-loaded one — Mitzenmacher's "power of two choices",
 * which captures most of JSQ's benefit with O(1) state probes.
 */
enum class Dispatch { Random, RoundRobin, JoinShortestQueue, PowerOfTwo };

/** Parse "random" | "roundrobin" | "jsq" | "p2c"; did-you-mean fatal()
 *  otherwise. */
Dispatch parseDispatch(std::string_view name);

/** Routes arriving tasks to one of several healthy servers. */
class LoadBalancer : public TaskAcceptor
{
  public:
    /** Receives tasks that could not be routed (all backends down). */
    using OverflowHandler = std::function<void(Task, TaskLoss)>;

    /**
     * @param servers non-owning targets (must outlive the balancer)
     * @param policy dispatch discipline
     * @param rng stream for Random/PowerOfTwo dispatch
     */
    LoadBalancer(std::vector<Server*> servers, Dispatch policy, Rng rng);

    void accept(Task task) override;

    /**
     * Mark one backend healthy or not. Unhealthy backends receive no
     * traffic from any discipline until re-admitted. Idempotent.
     */
    void setServerHealth(std::size_t index, bool healthy);

    /** Install the all-backends-down task handler (retry wiring).
     *  Without one, unroutable tasks are dropped (and counted). */
    void setOverflowHandler(OverflowHandler handler);

    /** Backends currently admitted. */
    std::size_t healthyCount() const { return healthyIndices.size(); }

    /** True when `index` is currently admitted. */
    bool serverHealthy(std::size_t index) const
    {
        return healthy[index] != 0;
    }

    /** Tasks routed so far (excludes unroutable tasks). */
    std::uint64_t routedCount() const { return routed; }

    /** Tasks that arrived with every backend down. */
    std::uint64_t unroutableCount() const { return unroutable; }

    /** Health Up->Down edges seen so far. */
    std::uint64_t ejectionCount() const { return ejections; }

    /** Health Down->Up edges seen so far. */
    std::uint64_t readmissionCount() const { return readmissions; }

    /** Per-server routed counts (same order as construction). */
    const std::vector<std::uint64_t>& perServerCounts() const
    {
        return counts;
    }

    /// Timeline probes: plain function pointers (never std::function —
    /// dispatch is on the per-task hot path), timestamped from the
    /// engine the probes were installed with. Read-only observers: they
    /// must not mutate the simulation, schedule events, or draw RNG.

    /** Called after every successful route. */
    using DispatchProbe = void (*)(void* ctx, Time now);
    /** Called on every admit/eject edge (admitted = new state). */
    using HealthProbe = void (*)(void* ctx, Time now, bool admitted);

    /** Install the timeline probes (model-build time only). */
    void setProbes(const Engine* engine, DispatchProbe onDispatch,
                   HealthProbe onHealth, void* ctx)
    {
        probeEngine = engine;
        dispatchProbe = onDispatch;
        healthProbe = onHealth;
        probeCtx = ctx;
    }

  private:
    std::size_t pick();

    std::vector<Server*> servers;
    Dispatch policy;
    Rng rng;
    OverflowHandler onOverflow;
    /// Admitted flags plus a dense index list. All disciplines draw from
    /// healthyIndices, so with every backend admitted (the common, no-
    /// failure case) the RNG draw sequence is identical to a health-
    /// unaware balancer — the health layer is bit-invisible until a
    /// backend is actually ejected.
    std::vector<std::uint8_t> healthy;
    std::vector<std::size_t> healthyIndices;
    std::size_t nextIndex = 0;
    std::uint64_t routed = 0;
    std::uint64_t unroutable = 0;
    std::uint64_t ejections = 0;
    std::uint64_t readmissions = 0;
    std::vector<std::uint64_t> counts;
    const Engine* probeEngine = nullptr;
    DispatchProbe dispatchProbe = nullptr;
    HealthProbe healthProbe = nullptr;
    void* probeCtx = nullptr;
};

/**
 * Periodic health prober: every `interval` seconds, compares each
 * server's actual Up/Down state with the balancer's admitted set and
 * reconciles. Detection (and re-admission) therefore lags the truth by
 * up to one interval — the window in which a health-lagged balancer
 * keeps routing to a dead backend.
 */
class HealthChecker
{
  public:
    HealthChecker(Engine& engine, LoadBalancer& balancer,
                  std::vector<Server*> servers, Time interval);

    /** Schedule the first probe (one interval from now). */
    void start();

    std::uint64_t probeCount() const { return probes; }

  private:
    void probe();

    Engine& engine;
    LoadBalancer& balancer;
    std::vector<Server*> servers;
    Time interval;
    std::uint64_t probes = 0;
};

} // namespace bighouse

#endif // BIGHOUSE_DATACENTER_LOAD_BALANCER_HH
