/**
 * @file
 * Task routing across a set of servers. BigHouse is "best suited for
 * studies investigating load balancing, power management, resource
 * allocation, hardware provisioning" — the balancer is the load-balancing
 * building block: random, round-robin, or join-shortest-queue dispatch.
 */

#ifndef BIGHOUSE_DATACENTER_LOAD_BALANCER_HH
#define BIGHOUSE_DATACENTER_LOAD_BALANCER_HH

#include <string_view>
#include <vector>

#include "base/random.hh"
#include "queueing/task.hh"

namespace bighouse {

class Server;

/**
 * Dispatch disciplines. PowerOfTwo samples two servers uniformly and
 * routes to the less-loaded one — Mitzenmacher's "power of two choices",
 * which captures most of JSQ's benefit with O(1) state probes.
 */
enum class Dispatch { Random, RoundRobin, JoinShortestQueue, PowerOfTwo };

/** Parse "random" | "roundrobin" | "jsq" | "p2c"; fatal() otherwise. */
Dispatch parseDispatch(std::string_view name);

/** Routes arriving tasks to one of several servers. */
class LoadBalancer : public TaskAcceptor
{
  public:
    /**
     * @param servers non-owning targets (must outlive the balancer)
     * @param policy dispatch discipline
     * @param rng stream for Random dispatch
     */
    LoadBalancer(std::vector<Server*> servers, Dispatch policy, Rng rng);

    void accept(Task task) override;

    /** Tasks routed so far. */
    std::uint64_t routedCount() const { return routed; }

    /** Per-server routed counts (same order as construction). */
    const std::vector<std::uint64_t>& perServerCounts() const
    {
        return counts;
    }

  private:
    std::size_t pick();

    std::vector<Server*> servers;
    Dispatch policy;
    Rng rng;
    std::size_t nextIndex = 0;
    std::uint64_t routed = 0;
    std::vector<std::uint64_t> counts;
};

} // namespace bighouse

#endif // BIGHOUSE_DATACENTER_LOAD_BALANCER_HH
