#include "datacenter/load_balancer.hh"

#include "base/logging.hh"
#include "base/strings.hh"
#include "queueing/server.hh"

namespace bighouse {

Dispatch
parseDispatch(std::string_view name)
{
    const std::string key = toLower(name);
    if (key == "random")
        return Dispatch::Random;
    if (key == "roundrobin" || key == "round-robin" || key == "rr")
        return Dispatch::RoundRobin;
    if (key == "jsq" || key == "shortest" || key == "joinshortestqueue")
        return Dispatch::JoinShortestQueue;
    if (key == "p2c" || key == "poweroftwo" || key == "power-of-two")
        return Dispatch::PowerOfTwo;
    fatalUnknownName("dispatch policy", name,
                     {"random", "roundrobin", "jsq", "p2c"});
}

LoadBalancer::LoadBalancer(std::vector<Server*> serverList, Dispatch policy,
                           Rng rng)
    : servers(std::move(serverList)), policy(policy), rng(rng)
{
    if (servers.empty())
        fatal("LoadBalancer needs at least one server");
    for (Server* server : servers) {
        if (server == nullptr)
            fatal("LoadBalancer given a null server");
    }
    counts.assign(servers.size(), 0);
    healthy.assign(servers.size(), 1);
    healthyIndices.resize(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i)
        healthyIndices[i] = i;
}

void
LoadBalancer::setServerHealth(std::size_t index, bool nowHealthy)
{
    BH_ASSERT(index < servers.size(), "health update for server ", index,
              " of ", servers.size());
    if ((healthy[index] != 0) == nowHealthy)
        return;
    healthy[index] = nowHealthy ? 1 : 0;
    if (nowHealthy)
        ++readmissions;
    else
        ++ejections;
    if (healthProbe != nullptr)
        healthProbe(probeCtx, probeEngine->now(), nowHealthy);
    // Rebuild the dense admitted list in ascending order, so the full-
    // health list is exactly [0..N) and every discipline's scan order is
    // deterministic.
    healthyIndices.clear();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (healthy[i])
            healthyIndices.push_back(i);
    }
}

void
LoadBalancer::setOverflowHandler(OverflowHandler handler)
{
    onOverflow = std::move(handler);
}

std::size_t
LoadBalancer::pick()
{
    BH_ASSERT(!healthyIndices.empty(), "pick() with every backend down");
    switch (policy) {
      case Dispatch::Random:
        return healthyIndices[static_cast<std::size_t>(
            rng.below(healthyIndices.size()))];
      case Dispatch::RoundRobin: {
        // The cursor walks server indices (not healthy-list positions),
        // skipping ejected backends — so a backend that flaps doesn't
        // shift everyone else's turn, and a full-health cluster cycles
        // exactly as an unaware balancer would.
        while (!healthy[nextIndex])
            nextIndex = (nextIndex + 1) % servers.size();
        const std::size_t index = nextIndex;
        nextIndex = (nextIndex + 1) % servers.size();
        return index;
      }
      case Dispatch::JoinShortestQueue: {
        std::size_t best = healthyIndices[0];
        std::size_t bestDepth = servers[best]->outstanding();
        for (std::size_t h = 1; h < healthyIndices.size(); ++h) {
            const std::size_t i = healthyIndices[h];
            const std::size_t depth = servers[i]->outstanding();
            if (depth < bestDepth) {
                best = i;
                bestDepth = depth;
            }
        }
        return best;
      }
      case Dispatch::PowerOfTwo: {
        const std::size_t n = healthyIndices.size();
        const std::size_t first = static_cast<std::size_t>(rng.below(n));
        std::size_t second = static_cast<std::size_t>(rng.below(n));
        if (n > 1) {
            while (second == first)
                second = static_cast<std::size_t>(rng.below(n));
        }
        const std::size_t a = healthyIndices[first];
        const std::size_t b = healthyIndices[second];
        return servers[a]->outstanding() <= servers[b]->outstanding() ? a
                                                                      : b;
      }
    }
    panic("unreachable dispatch policy");
}

void
LoadBalancer::accept(Task task)
{
    if (healthyIndices.empty()) [[unlikely]] {
        ++unroutable;
        if (onOverflow) {
            onOverflow(std::move(task), TaskLoss::Unroutable);
            return;
        }
        return;  // no retry path wired: the task is simply gone
    }
    const std::size_t target = pick();
    ++routed;
    ++counts[target];
    if (dispatchProbe != nullptr) [[unlikely]]
        dispatchProbe(probeCtx, probeEngine->now());
    servers[target]->accept(std::move(task));
}

HealthChecker::HealthChecker(Engine& engine, LoadBalancer& balancer,
                             std::vector<Server*> serverList, Time interval)
    : engine(engine),
      balancer(balancer),
      servers(std::move(serverList)),
      interval(interval)
{
    if (interval <= 0.0)
        fatal("HealthChecker interval must be > 0, got ", interval);
}

void
HealthChecker::start()
{
    // bh-lint: allow(callback-lifetime) -- checker is sim-lifetime
    engine.scheduleAfter(interval, [this] { probe(); });
}

void
HealthChecker::probe()
{
    ++probes;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        const bool actual = servers[i]->isUp();
        if (actual != balancer.serverHealthy(i))
            balancer.setServerHealth(i, actual);
    }
    // bh-lint: allow(callback-lifetime) -- checker is sim-lifetime
    engine.scheduleAfter(interval, [this] { probe(); });
}

} // namespace bighouse
