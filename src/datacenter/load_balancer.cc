#include "datacenter/load_balancer.hh"

#include "base/logging.hh"
#include "base/strings.hh"
#include "queueing/server.hh"

namespace bighouse {

Dispatch
parseDispatch(std::string_view name)
{
    const std::string key = toLower(name);
    if (key == "random")
        return Dispatch::Random;
    if (key == "roundrobin" || key == "round-robin" || key == "rr")
        return Dispatch::RoundRobin;
    if (key == "jsq" || key == "shortest" || key == "joinshortestqueue")
        return Dispatch::JoinShortestQueue;
    if (key == "p2c" || key == "poweroftwo" || key == "power-of-two")
        return Dispatch::PowerOfTwo;
    fatal("unknown dispatch policy '", std::string(name), "'");
}

LoadBalancer::LoadBalancer(std::vector<Server*> serverList, Dispatch policy,
                           Rng rng)
    : servers(std::move(serverList)), policy(policy), rng(rng)
{
    if (servers.empty())
        fatal("LoadBalancer needs at least one server");
    for (Server* server : servers) {
        if (server == nullptr)
            fatal("LoadBalancer given a null server");
    }
    counts.assign(servers.size(), 0);
}

std::size_t
LoadBalancer::pick()
{
    switch (policy) {
      case Dispatch::Random:
        return static_cast<std::size_t>(rng.below(servers.size()));
      case Dispatch::RoundRobin: {
        const std::size_t index = nextIndex;
        nextIndex = (nextIndex + 1) % servers.size();
        return index;
      }
      case Dispatch::JoinShortestQueue: {
        std::size_t best = 0;
        std::size_t bestDepth = servers[0]->outstanding();
        for (std::size_t i = 1; i < servers.size(); ++i) {
            const std::size_t depth = servers[i]->outstanding();
            if (depth < bestDepth) {
                best = i;
                bestDepth = depth;
            }
        }
        return best;
      }
      case Dispatch::PowerOfTwo: {
        const std::size_t first =
            static_cast<std::size_t>(rng.below(servers.size()));
        std::size_t second =
            static_cast<std::size_t>(rng.below(servers.size()));
        if (servers.size() > 1) {
            while (second == first) {
                second =
                    static_cast<std::size_t>(rng.below(servers.size()));
            }
        }
        return servers[first]->outstanding()
                       <= servers[second]->outstanding()
                   ? first
                   : second;
      }
    }
    panic("unreachable dispatch policy");
}

void
LoadBalancer::accept(Task task)
{
    const std::size_t target = pick();
    ++routed;
    ++counts[target];
    servers[target]->accept(std::move(task));
}

} // namespace bighouse
