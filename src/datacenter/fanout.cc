#include "datacenter/fanout.hh"

#include "base/logging.hh"

namespace bighouse {

FanOutCluster::FanOutCluster(Engine& engine, unsigned leafCount,
                             unsigned coresPerLeaf, DistPtr service,
                             Rng rng)
    : engine(engine), leafService(std::move(service)), rng(rng)
{
    if (leafCount == 0)
        fatal("FanOutCluster needs at least one leaf");
    if (!leafService)
        fatal("FanOutCluster needs a leaf service distribution");
    leaves.reserve(leafCount);
    for (unsigned i = 0; i < leafCount; ++i) {
        leaves.push_back(std::make_unique<Server>(engine, coresPerLeaf));
        leaves.back()->setCompletionHandler(
            [this](const Task& subTask) { leafCompleted(subTask.id); });
    }
}

Server&
FanOutCluster::leaf(std::size_t index)
{
    BH_ASSERT(index < leaves.size(), "leaf index out of range");
    return *leaves[index];
}

void
FanOutCluster::setCompletionHandler(Server::CompletionHandler handler)
{
    onComplete = std::move(handler);
}

void
FanOutCluster::accept(Task request)
{
    ++arrivedRequests;
    const std::uint64_t id = request.id;
    BH_ASSERT(pending.find(id) == pending.end(),
              "duplicate in-flight request id ", id);
    pending.emplace(
        id, PendingRequest{std::move(request),
                           static_cast<unsigned>(leaves.size())});
    // Every leaf gets an independent shard of the query; sub-tasks carry
    // the parent id so completions can be matched back.
    for (const auto& leafServer : leaves) {
        Task subTask;
        subTask.id = id;
        subTask.arrivalTime = engine.now();
        subTask.size = leafService->sample(rng);
        subTask.remaining = subTask.size;
        leafServer->accept(std::move(subTask));
    }
}

void
FanOutCluster::leafCompleted(std::uint64_t requestId)
{
    const auto it = pending.find(requestId);
    BH_ASSERT(it != pending.end(), "leaf response for unknown request ",
              requestId);
    if (--it->second.remainingLeaves > 0)
        return;
    Task done = std::move(it->second.request);
    pending.erase(it);
    done.finishTime = engine.now();
    if (done.startTime == kTimeNever)
        done.startTime = done.arrivalTime;
    ++completedRequests;
    if (onComplete)
        onComplete(done);
}

} // namespace bighouse
