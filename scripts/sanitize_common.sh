# Shared sanitizer-gate plumbing, sourced by check_tsan.sh /
# check_asan.sh / check_ubsan.sh. Not executable on its own.
#
# bh_sanitize <thread|address|undefined> [ctest-args...]
#
# Configures and builds the tree with BIGHOUSE_SANITIZE=<sanitizer> into
# a throwaway directory under ${TMPDIR:-/tmp} — never inside the repo
# (an earlier version of check_tsan.sh built build-threadsan/ in-tree
# and those artifacts ended up committed) — then runs ctest with the
# given arguments. The build directory is removed on exit unless
# BIGHOUSE_KEEP_BUILD=1, or BIGHOUSE_SAN_BUILD_DIR names a directory to
# reuse across runs (incremental rebuilds; also kept).

bh_sanitize() {
    _bh_sanitizer="$1"
    shift

    _bh_source_dir="$(cd "$(dirname "$0")/.." && pwd)"
    if [ -n "${BIGHOUSE_SAN_BUILD_DIR:-}" ]; then
        _bh_build_dir="${BIGHOUSE_SAN_BUILD_DIR}"
        _bh_cleanup=""
    else
        _bh_build_dir="$(mktemp -d \
            "${TMPDIR:-/tmp}/bighouse-${_bh_sanitizer}san.XXXXXX")"
        _bh_cleanup="${_bh_build_dir}"
    fi
    if [ -z "${BIGHOUSE_KEEP_BUILD:-}" ] && [ -n "${_bh_cleanup}" ]; then
        trap 'rm -rf "${_bh_cleanup}"' EXIT INT TERM
    fi

    echo "== ${_bh_sanitizer} sanitizer build: ${_bh_build_dir}"
    cmake -B "${_bh_build_dir}" -S "${_bh_source_dir}" \
        -DBIGHOUSE_SANITIZE="${_bh_sanitizer}"
    cmake --build "${_bh_build_dir}" -j "$(nproc)"
    ctest --test-dir "${_bh_build_dir}" --output-on-failure \
        -j "$(nproc)" "$@"
}
