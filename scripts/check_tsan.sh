#!/bin/sh
# Build with ThreadSanitizer and run the concurrency-sensitive tests
# (everything labelled `parallel`: the supervised master/slave runtime
# and its fault-injection suite). Usage:
#
#   scripts/check_tsan.sh [build-dir]
#
# Pass a different BIGHOUSE_SANITIZE through the environment to reuse
# the same flow for ASan/UBSan, e.g.:
#
#   BIGHOUSE_SANITIZE=address scripts/check_tsan.sh build-asan
set -eu

SANITIZER="${BIGHOUSE_SANITIZE:-thread}"
BUILD_DIR="${1:-build-${SANITIZER}san}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
    -DBIGHOUSE_SANITIZE="${SANITIZER}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
# Instrumented builds run the simulation ~10x slower; stretch the tests'
# wall-clock knobs (watchdog deadlines, injected stalls) to match so
# healthy-but-slow slaves are not mistaken for hung ones.
BH_TEST_TIME_SCALE="${BH_TEST_TIME_SCALE:-10}" \
    ctest --test-dir "${BUILD_DIR}" -L parallel --output-on-failure \
    -j "$(nproc)"
