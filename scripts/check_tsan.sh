#!/bin/sh
# Build with ThreadSanitizer and run the concurrency-sensitive tests
# (everything labelled `parallel`: the supervised master/slave runtime
# and its fault-injection suite). Usage:
#
#   scripts/check_tsan.sh [extra ctest args...]
#
# The instrumented build lands in a throwaway directory under
# ${TMPDIR:-/tmp}; set BIGHOUSE_SAN_BUILD_DIR to reuse one across runs
# or BIGHOUSE_KEEP_BUILD=1 to keep the temporary one for debugging.
set -eu

. "$(dirname "$0")/sanitize_common.sh"

# Instrumented builds run the simulation ~10x slower; stretch the tests'
# wall-clock knobs (watchdog deadlines, injected stalls) to match so
# healthy-but-slow slaves are not mistaken for hung ones.
export BH_TEST_TIME_SCALE="${BH_TEST_TIME_SCALE:-10}"
bh_sanitize thread -L parallel "$@"
