#!/bin/sh
# The static-analysis gate: bh_lint over src/, tools/, and bench/, the
# hardened-warning (BIGHOUSE_STRICT) build, and clang-tidy when it is
# installed. Usage:
#
#   scripts/check_lint.sh [bh_lint args...]
#
# Extra arguments are forwarded to bh_lint after the defaults (e.g.
# --sarif --output=lint.sarif, or --baseline-write to regenerate
# tools/lint_baseline.txt). bh_lint runs in ratchet mode against the
# committed baseline with repo-relative paths, so its keys match on
# every checkout. Exit status is nonzero on any fresh finding.
set -eu

SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$(mktemp -d "${TMPDIR:-/tmp}/bighouse-lint.XXXXXX")"
trap 'rm -rf "${BUILD_DIR}"' EXIT INT TERM

echo "== strict-warning build (-Wshadow=local -Wconversion -Wdouble-promotion)"
cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" -DBIGHOUSE_STRICT=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
WARN_LOG="${BUILD_DIR}/warnings.log"
cmake --build "${BUILD_DIR}" -j "$(nproc)" 2>"${WARN_LOG}" >/dev/null
if grep -q 'warning:' "${WARN_LOG}"; then
    echo "strict build produced warnings:" >&2
    grep 'warning:' "${WARN_LOG}" >&2
    exit 1
fi
echo "   clean"

echo "== bh_lint (baseline: tools/lint_baseline.txt)"
"${BUILD_DIR}/tools/bh_lint" \
    --strip-prefix="${SOURCE_DIR}/" \
    --baseline="${SOURCE_DIR}/tools/lint_baseline.txt" "$@" \
    "${SOURCE_DIR}/src" "${SOURCE_DIR}/tools" "${SOURCE_DIR}/bench"

if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (checks from .clang-tidy)"
    # Library sources only: tests and benches trip gtest/benchmark
    # macro noise without telling us anything about the simulator.
    find "${SOURCE_DIR}/src" -name '*.cc' -print0 \
        | xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "${BUILD_DIR}" \
              --quiet --warnings-as-errors='*'
else
    echo "== clang-tidy not installed; skipping (CI runs it)"
fi
