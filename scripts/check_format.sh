#!/bin/sh
# clang-format gate: verify every tracked C++ source matches the
# committed .clang-format style. Usage:
#
#   scripts/check_format.sh          # check (exit 1 on drift)
#   scripts/check_format.sh --fix    # rewrite files in place
set -eu

SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not installed; skipping (CI runs it)"
    exit 0
fi

MODE="--dry-run"
if [ "${1:-}" = "--fix" ]; then
    MODE="-i"
fi

cd "${SOURCE_DIR}"
git ls-files '*.cc' '*.hh' '*.cpp' '*.hpp' \
    | xargs clang-format ${MODE} -Werror --style=file
