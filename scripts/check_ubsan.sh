#!/bin/sh
# Build with UndefinedBehaviorSanitizer (signed overflow, invalid
# shifts, misaligned access, ...) and run the full test suite; the build
# uses -fno-sanitize-recover so the first report fails the run. Usage:
#
#   scripts/check_ubsan.sh [extra ctest args...]
set -eu

. "$(dirname "$0")/sanitize_common.sh"

export BH_TEST_TIME_SCALE="${BH_TEST_TIME_SCALE:-10}"
bh_sanitize undefined "$@"
