#!/bin/sh
# The perf-smoke gate: build bh_perf in Release, run the fixed-seed
# baseline scenarios in --quick mode, and validate the emitted JSON
# against the bighouse-bench-v1 schema. Usage:
#
#   scripts/check_perf.sh [--full] [bh_perf args...]
#
# --full runs the full-length scenarios (minutes, the numbers that go
# into the committed BENCH_*.json); the default --quick run is a CI
# smoke (~1s of measured work) that proves the driver and the hot path
# still function, not a statistically careful measurement. Extra
# arguments are forwarded to bh_perf (e.g. --scenario micro_engine).
# Exit status is nonzero when the driver fails or the JSON is invalid.
set -eu

SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$(mktemp -d "${TMPDIR:-/tmp}/bighouse-perf.XXXXXX")"
trap 'rm -rf "${BUILD_DIR}"' EXIT INT TERM

MODE="--quick"
if [ "${1:-}" = "--full" ]; then
    MODE=""
    shift
fi

echo "== Release build of bh_perf"
cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bh_perf >/dev/null

OUT="${BUILD_DIR}/BENCH.json"
echo "== bh_perf ${MODE:-(full)}"
# shellcheck disable=SC2086  # MODE is intentionally word-split
"${BUILD_DIR}/bench/bh_perf" ${MODE} --out "${OUT}" "$@"

# The committed full-mode baseline, used for the DES-checksum drift gate
# (only comparable when this run is also full-mode: --quick shrinks the
# workloads, so quick checksums legitimately differ).
BASELINE="${SOURCE_DIR}/BENCH_5.json"

echo "== validating ${OUT}"
if command -v python3 >/dev/null 2>&1; then
    python3 - "${OUT}" "${MODE:-full}" "${BASELINE}" <<'EOF'
import json
import os
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
full_mode = sys.argv[2] == "full"
baseline_path = sys.argv[3]
assert doc["schema"] == "bighouse-bench-v1", doc.get("schema")
scenarios = doc["scenarios"]
assert scenarios, "no scenarios in report"
for entry in scenarios:
    unit = next(u for u in ("events", "observations", "tasks")
                if u in entry)
    assert entry[unit] > 0, entry["name"]
    assert entry["wall_seconds"] > 0, entry["name"]
    assert entry[unit + "_per_sec"] > 0, entry["name"]

# Backend equivalence: the *_heap twins replay the identical fixed-seed
# workload on the reference binary heap, so their checksums (and event
# counts) must match the calendar scenarios bit for bit.
by_name = {entry["name"]: entry for entry in scenarios}
for calendar_name in ("micro_event_queue", "micro_engine"):
    heap_name = calendar_name + "_heap"
    if calendar_name not in by_name or heap_name not in by_name:
        continue
    calendar, heap = by_name[calendar_name], by_name[heap_name]
    assert calendar["checksum"] == heap["checksum"], (
        "backend checksum mismatch for %s: calendar=%r heap=%r"
        % (calendar_name, calendar["checksum"], heap["checksum"]))
    assert calendar["events"] == heap["events"], calendar_name
    print("   %s: calendar/heap checksums agree" % calendar_name)

# Timeline overhead gate: micro_timeline replays micro_engine's exact
# fixed-seed workload with the observability probes live. The probes
# must not perturb the event stream (checksums bit-identical), and the
# scenario's own interleaved bare/instrumented pairing bounds the
# ns/event overhead: ~9% measured on this probe-saturated worst case
# (every event flips a gauge), gated at 15% in full mode so real
# regressions fail while VM frequency/steal jitter does not. Quick mode
# measures ~50 ms of work, where jitter swamps any tight margin, so it
# only sanity-checks against gross (2x) regressions.
if "micro_engine" in by_name and "micro_timeline" in by_name:
    bare = by_name["micro_engine"]
    instrumented = by_name["micro_timeline"]
    assert bare["checksum"] == instrumented["checksum"], (
        "timeline probes perturbed the event stream: bare=%r "
        "instrumented=%r"
        % (bare["checksum"], instrumented["checksum"]))
    assert bare["events"] == instrumented["events"]
    paired_bare = instrumented["bare_ns_per_event"]
    overhead = instrumented["ns_per_event"] / paired_bare
    bound = 1.15 if full_mode else 2.0
    assert overhead <= bound, (
        "timeline overhead %.1f%% exceeds the %.0f%% gate (paired bare "
        "%.1f ns/event, instrumented %.1f ns/event)"
        % ((overhead - 1.0) * 100.0, (bound - 1.0) * 100.0,
           paired_bare, instrumented["ns_per_event"]))
    print("   micro_timeline: checksum matches micro_engine, "
          "overhead %+.1f%%" % ((overhead - 1.0) * 100.0))

# Recurrence speedup gate: the vectorized backend must beat event
# dispatch by >= 10x ns/task on the eligible FCFS scaling twin. The twin
# checksums are NOT compared — the backends stop at different simulated
# instants; distributional equivalence is tests/test_recurrence.cc's job.
if "fig7_scaling_fcfs" in by_name and "fig7_scaling_recurrence" in by_name:
    des = by_name["fig7_scaling_fcfs"]
    rec = by_name["fig7_scaling_recurrence"]
    assert des["ns_per_task"] > 0 and rec["ns_per_task"] > 0
    speedup = des["ns_per_task"] / rec["ns_per_task"]
    assert speedup >= 10.0, (
        "recurrence twin speedup %.1fx < 10x (des %.1f ns/task, "
        "recurrence %.1f ns/task)"
        % (speedup, des["ns_per_task"], rec["ns_per_task"]))
    print("   fig7 twin: recurrence %.1fx faster per task" % speedup)

# DES drift gate (full mode only): every fixed-seed DES scenario shared
# with the committed baseline must reproduce its checksum exactly — a
# perf PR must not silently change event-path semantics.
if full_mode and os.path.exists(baseline_path):
    with open(baseline_path) as fh:
        base = json.load(fh)
    if base.get("quick"):
        print("   baseline is quick-mode; skipping checksum drift gate")
    else:
        base_by_name = {e["name"]: e for e in base["scenarios"]}
        checked = 0
        for name in ("micro_event_queue", "micro_event_queue_heap",
                     "micro_engine", "micro_engine_heap",
                     "micro_timeline", "micro_stats", "fig7_scaling"):
            if name not in by_name or name not in base_by_name:
                continue
            assert by_name[name]["checksum"] == \
                base_by_name[name]["checksum"], (
                "DES checksum drift in %s: baseline=%r current=%r"
                % (name, base_by_name[name]["checksum"],
                   by_name[name]["checksum"]))
            checked += 1
        print("   %d DES checksums match the committed baseline"
              % checked)
print("   %d scenarios OK" % len(scenarios))
EOF
else
    # Containers without python3: at least require the schema marker
    # and a non-empty scenario list.
    grep -q '"bighouse-bench-v1"' "${OUT}"
    grep -q '"name"' "${OUT}"
    echo "   schema marker present (python3 unavailable for full check)"
fi
echo "perf smoke passed"
