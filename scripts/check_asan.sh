#!/bin/sh
# Build with AddressSanitizer (+ leak detection where the platform
# supports it) and run the full test suite. Usage:
#
#   scripts/check_asan.sh [extra ctest args...]
#
# A clean pass means no heap overflow, use-after-free, or leak anywhere
# the tier-1 tests reach — the memory-cleanliness half of the
# correctness-tooling gate (docs/static_analysis.md).
set -eu

. "$(dirname "$0")/sanitize_common.sh"

export BH_TEST_TIME_SCALE="${BH_TEST_TIME_SCALE:-10}"
bh_sanitize address "$@"
