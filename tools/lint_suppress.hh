/**
 * @file
 * In-source suppression annotations for bh_lint.
 *
 *     offendingLine();  // bh-lint: allow(rule-name) -- justification
 *
 * silences `rule-name` on that line and the line directly below;
 * `// bh-lint: allow-file(rule-name)` silences it for the whole file.
 * Every consulted annotation is marked used so the stale-suppression
 * audit can flag annotations that no longer match any finding — dead
 * suppressions are how real violations sneak back in.
 */

// bh-lint: allow-file(stale-suppression) -- the doc comment above shows
// example annotations with placeholder rule names

#ifndef BIGHOUSE_TOOLS_LINT_SUPPRESS_HH
#define BIGHOUSE_TOOLS_LINT_SUPPRESS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bighouse::lint {

struct Suppressions
{
    struct Entry
    {
        std::string rule;
        std::size_t line = 0;  ///< 0-based annotation line
        bool fileWide = false;
        bool used = false;
    };

    std::vector<Entry> entries;

    /**
     * True when `rule` is suppressed at 0-based line `lineIndex`; every
     * entry that grants the suppression is marked used. Call only after
     * a rule has actually matched, never as a pre-filter, or the audit
     * sees phantom usage.
     */
    bool allows(const std::string& rule, std::size_t lineIndex);
};

/** Parse all bh-lint annotations out of the raw source lines. */
Suppressions parseSuppressions(const std::vector<std::string>& rawLines);

} // namespace bighouse::lint

#endif // BIGHOUSE_TOOLS_LINT_SUPPRESS_HH
