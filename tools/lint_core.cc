#include "lint_core.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "base/logging.hh"
#include "lint_semantics.hh"
#include "lint_suppress.hh"
#include "lint_tokenizer.hh"

namespace bighouse::lint {

namespace {

// ---------------------------------------------------------------------
// Path predicates

/** The deterministic-time/RNG home: src/base/time.*, src/base/random.*. */
bool
inBaseTimeOrRandom(const std::string& path)
{
    const std::string p = normalizedPath(path);
    return p.find("base/time.") != std::string::npos
           || p.find("base/random.") != std::string::npos;
}

bool
inBaseRandom(const std::string& path)
{
    return normalizedPath(path).find("base/random.")
           != std::string::npos;
}

/** The logging sink itself: src/base/logging.{hh,cc}. */
bool
inBaseLogging(const std::string& path)
{
    return normalizedPath(path).find("base/logging.")
           != std::string::npos;
}

// ---------------------------------------------------------------------
// Rules

/** A simple regex-per-line rule over the scrubbed line view. */
struct PatternRule
{
    std::string name;
    std::string summary;
    std::vector<std::regex> patterns;
    std::string message;
    /// Return true when the rule applies to this file at all.
    bool (*applies)(const std::string& path);
};

bool
alwaysApplies(const std::string&)
{
    return true;
}

const std::vector<PatternRule>&
patternRules()
{
    static const std::vector<PatternRule> rules = [] {
        std::vector<PatternRule> r;
        r.push_back(PatternRule{
            "wall-clock",
            "wall-clock reads outside src/base/{time,random}",
            {
                std::regex(R"(chrono::system_clock)"),
                std::regex(R"(\bgettimeofday\s*\()"),
                std::regex(R"(\bstd::time\s*\()"),
                std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0\s*\)|&))"),
                std::regex(R"(\bclock\s*\(\s*\))"),
                std::regex(R"(\blocaltime\s*\(|\bmktime\s*\()"),
            },
            "wall-clock read: simulated components must use engine time "
            "(steady_clock is allowed for supervision watchdogs only)",
            [](const std::string& p) { return !inBaseTimeOrRandom(p); }});
        r.push_back(PatternRule{
            "raw-rand",
            "nondeterministic RNG outside src/base/random",
            {
                std::regex(R"(\b(s?rand|random)\s*\(\s*\))"),
                std::regex(R"(\bsrand\s*\()"),
                std::regex(R"(\brand\s*\(\s*\))"),
                std::regex(R"(\b[dlm]rand48\s*\()"),
                std::regex(R"(\brandom_device\b)"),
                std::regex(R"(\bstd::mt19937(_64)?\b)"),
            },
            "nondeterministic or ad-hoc RNG: draw from a bighouse::Rng "
            "stream derived from the experiment root seed",
            [](const std::string& p) { return !inBaseRandom(p); }});
        r.push_back(PatternRule{
            "raw-new-delete",
            "raw new/delete instead of RAII ownership",
            {
                std::regex(R"(\bnew\s+[A-Za-z_(:<])"),
                // delete-expressions only: "= delete" declarations are
                // the idiomatic way to forbid copies and stay legal.
                std::regex(R"(\bdelete\s*\[\s*\])"),
                std::regex(R"(\bdelete\s+[A-Za-z_*(:])"),
            },
            "raw new/delete: use std::make_unique/containers so slave "
            "teardown and fault paths cannot leak or double-free",
            alwaysApplies});
        r.push_back(PatternRule{
            "float-literal",
            "float literals/types in statistics kernels",
            {
                std::regex(R"(\b\d+\.?\d*([eE][+-]?\d+)?f\b)"),
                std::regex(R"(\bfloat\b)"),
            },
            "statistics kernels are double-precision end to end; float "
            "truncation biases Welford updates and CI half-widths",
            [](const std::string& p) {
                return hasPathComponent(p, "stats");
            }});
        r.push_back(PatternRule{
            "raw-stderr",
            "direct stderr writes outside src/base/logging and tools/",
            {
                std::regex(R"(\bstd::cerr\b)"),
                std::regex(R"(\bfprintf\s*\(\s*stderr\b)"),
                std::regex(R"(\bperror\s*\()"),
            },
            "raw stderr write: library code must log through "
            "base/logging (single atomic write per line, thread-tagged) "
            "so multi-slave output never interleaves mid-line",
            [](const std::string& p) {
                // CLI front-ends own their terminal; the logging sink is
                // the one place that legitimately writes the stream.
                return !inBaseLogging(p) && !hasPathComponent(p, "tools");
            }});
        return r;
    }();
    return rules;
}

/** Names + summaries of the non-pattern rules, for the catalog. */
const std::vector<RuleInfo>&
compositeRuleInfo()
{
    static const std::vector<RuleInfo> info = {
        {"unordered-iteration",
         "iteration over unordered containers feeding simulator state"},
        {"rng-seed-plumbing",
         "default-seeded Rng, or Rng stored inside a Distribution"},
        {"callback-lifetime",
         "by-reference or bare-this lambda captures scheduled into the "
         "event queue"},
        {"rng-stream-sharing",
         "static, global, aliased, or reference-counted Rng streams; "
         "pre-sampling loops drawing through another component's "
         "stream"},
        {"atomics-discipline",
         "relaxed atomics outside src/obs, volatile-as-sync, plain "
         "access racing an atomic_ref"},
        {"stale-suppression",
         "bh-lint allow() annotations that no longer match anything"},
    };
    return info;
}

/**
 * unordered-iteration: collect identifiers declared (or bound) as
 * unordered containers in this file, then flag range-for loops over them
 * and explicit .begin() traversals. File-local by design — cross-file
 * aliasing is out of scope for a heuristic linter.
 */
void
checkUnorderedIteration(const std::string& path, const ScanResult& scan,
                        Suppressions& sup,
                        std::vector<Finding>& findings)
{
    static const std::regex declRe(
        R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*[;={(])");
    static const std::regex rangeForRe(R"(for\s*\([^:;)]*:\s*(\w+)\s*\))");
    static const std::regex beginRe(R"((\w+)\s*\.\s*begin\s*\()");
    static const std::regex inlineForRe(
        R"(for\s*\([^:;)]*:[^)]*unordered_)");

    std::set<std::string> unorderedNames;
    for (const std::string& line : scan.scrubbed) {
        auto begin =
            std::sregex_iterator(line.begin(), line.end(), declRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            unorderedNames.insert((*it)[1].str());
    }

    const std::string rule = "unordered-iteration";
    auto flag = [&](std::size_t i, const std::string& what) {
        if (sup.allows(rule, i))
            return;
        findings.push_back(Finding{
            path, i + 1, rule,
            "iteration over unordered container '" + what
                + "': hash-order feeds downstream state and varies "
                  "across libstdc++ versions; use a sorted container "
                  "or sort the keys first",
            scan.raw[i]});
    };
    for (std::size_t i = 0; i < scan.scrubbed.size(); ++i) {
        const std::string& line = scan.scrubbed[i];
        auto tryMatches = [&](const std::regex& re) {
            auto begin = std::sregex_iterator(line.begin(), line.end(), re);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                const std::string name = (*it)[1].str();
                if (unorderedNames.count(name) > 0)
                    flag(i, name);
            }
        };
        tryMatches(rangeForRe);
        tryMatches(beginRe);
        if (std::regex_search(line, inlineForRe))
            flag(i, "<temporary>");
    }
}

/**
 * rng-seed-plumbing: a default-constructed Rng collapses every stream to
 * the same fixed seed, and an Rng *stored inside a Distribution* defeats
 * the caller-supplies-the-stream design the per-slave seeding relies on.
 */
void
checkRngSeedPlumbing(const std::string& path, const ScanResult& scan,
                     Suppressions& sup,
                     std::vector<Finding>& findings)
{
    // Explicit default construction is always wrong: the fallback seed
    // is a fixed constant, so every such stream is the same stream. A
    // bare `Rng x;` member elsewhere may be seeded in a ctor init-list
    // in another file, so only distribution sources (where storing ANY
    // Rng breaks the sample(Rng&) design) flag the bare declaration.
    static const std::regex defaultCtorRe(
        R"(\bRng\s+\w+\s*(\{\s*\}|=\s*Rng\s*(\(\s*\)|\{\s*\})))");
    static const std::regex bareTempRe(R"(\bRng\s*(\(\s*\)|\{\s*\}))");
    static const std::regex memberRe(R"(\bRng&?\s+\w+\s*(;|\{\s*\};))");

    if (inBaseRandom(path))
        return;
    const bool distribution = hasPathComponent(path, "distribution");
    const std::string rule = "rng-seed-plumbing";
    for (std::size_t i = 0; i < scan.scrubbed.size(); ++i) {
        const std::string& line = scan.scrubbed[i];
        if (std::regex_search(line, defaultCtorRe)
            || std::regex_search(line, bareTempRe)) {
            if (!sup.allows(rule, i))
                findings.push_back(Finding{
                    path, i + 1, rule,
                    "default-seeded Rng: every default-constructed "
                    "stream is identical; derive seeds from the "
                    "experiment root via Rng::split() or SplitMix64",
                    scan.raw[i]});
        } else if (distribution && std::regex_search(line, memberRe)) {
            if (!sup.allows(rule, i))
                findings.push_back(Finding{
                    path, i + 1, rule,
                    "Rng state inside a Distribution: distributions "
                    "must draw from the caller-supplied stream "
                    "(sample(Rng&)) so per-slave seed derivation stays "
                    "intact",
                    scan.raw[i]});
        }
    }
}

/**
 * stale-suppression: every annotation must still be earning its keep.
 * Judged only for rules that actually ran this pass; unknown rule
 * names are always findings (they suppress nothing and usually mean a
 * typo silently disabled the protection someone intended).
 *
 * `allow-file(stale-suppression)` opts a file out of the audit — the
 * escape hatch for files (like the linter's own headers) whose doc
 * comments show example annotations. Such meta-entries are themselves
 * exempt from the audit, so they are never reported stale.
 */
void
auditSuppressions(const std::string& path, const ScanResult& scan,
                  Suppressions& sup,
                  const std::vector<std::string>& enabledRules,
                  std::vector<Finding>& findings)
{
    auto ruleRan = [&](const std::string& rule) {
        return enabledRules.empty()
               || std::find(enabledRules.begin(), enabledRules.end(),
                            rule)
                      != enabledRules.end();
    };
    const std::string rule = "stale-suppression";
    for (const Suppressions::Entry& entry : sup.entries) {
        if (entry.used || entry.rule == rule)
            continue;
        std::string message;
        if (!knownRule(entry.rule)) {
            message = "suppression names unknown rule '" + entry.rule
                      + "' (try --list-rules): it suppresses nothing";
        } else if (ruleRan(entry.rule)) {
            message = "stale suppression: no '" + entry.rule
                      + "' finding matches this allow"
                      + (entry.fileWide ? "-file" : "")
                      + " annotation any more — delete it so the rule "
                        "protects this code again";
        } else {
            continue;  // rule did not run; unjudgeable this pass
        }
        if (!sup.allows(rule, entry.line))
            findings.push_back(Finding{path, entry.line + 1, rule,
                                       message, scan.raw[entry.line]});
    }
}

std::string
trimmed(const std::string& text)
{
    const auto first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

} // namespace

std::string
normalizedPath(const std::string& path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

bool
hasPathComponent(const std::string& path, const std::string& component)
{
    const std::string p = normalizedPath(path);
    std::size_t pos = 0;
    while ((pos = p.find(component, pos)) != std::string::npos) {
        const bool startOk = pos == 0 || p[pos - 1] == '/';
        const std::size_t end = pos + component.size();
        const bool endOk = end == p.size() || p[end] == '/'
                           || p[end] == '.';
        if (startOk && endOk)
            return true;
        pos = end;
    }
    return false;
}

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = [] {
        std::vector<RuleInfo> all;
        for (const PatternRule& rule : patternRules())
            all.push_back(RuleInfo{rule.name, rule.summary});
        for (const RuleInfo& rule : compositeRuleInfo())
            all.push_back(rule);
        std::sort(all.begin(), all.end(),
                  [](const RuleInfo& a, const RuleInfo& b) {
                      return a.name < b.name;
                  });
        return all;
    }();
    return catalog;
}

bool
knownRule(const std::string& name)
{
    for (const RuleInfo& rule : ruleCatalog()) {
        if (rule.name == name)
            return true;
    }
    return false;
}

std::vector<Finding>
lintSource(const std::string& path, const std::string& contents,
           const std::vector<std::string>& enabledRules)
{
    auto enabled = [&](const std::string& rule) {
        return enabledRules.empty()
               || std::find(enabledRules.begin(), enabledRules.end(),
                            rule)
                      != enabledRules.end();
    };

    const ScanResult scan = scanSource(contents);
    Suppressions sup = parseSuppressions(scan.raw);
    std::vector<Finding> findings;

    for (const PatternRule& rule : patternRules()) {
        if (!enabled(rule.name) || !rule.applies(path))
            continue;
        for (std::size_t i = 0; i < scan.scrubbed.size(); ++i) {
            for (const std::regex& pattern : rule.patterns) {
                if (std::regex_search(scan.scrubbed[i], pattern)) {
                    // Consult suppressions only after a match, so the
                    // stale audit never sees phantom usage.
                    if (!sup.allows(rule.name, i))
                        findings.push_back(Finding{path, i + 1,
                                                   rule.name,
                                                   rule.message,
                                                   scan.raw[i]});
                    break;  // one finding per rule per line
                }
            }
        }
    }
    if (enabled("unordered-iteration"))
        checkUnorderedIteration(path, scan, sup, findings);
    if (enabled("rng-seed-plumbing"))
        checkRngSeedPlumbing(path, scan, sup, findings);
    if (enabled("callback-lifetime"))
        checkCallbackLifetime(path, scan, sup, findings);
    if (enabled("rng-stream-sharing"))
        checkRngStreamSharing(path, scan, sup, findings);
    if (enabled("atomics-discipline"))
        checkAtomicsDiscipline(path, scan, sup, findings);
    if (enabled("stale-suppression"))
        auditSuppressions(path, scan, sup, enabledRules, findings);

    for (Finding& finding : findings)
        finding.snippet = trimmed(finding.snippet);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

std::vector<Finding>
lintFile(const std::string& path,
         const std::vector<std::string>& enabledRules)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("bh_lint: cannot read ", path);
    std::ostringstream contents;
    contents << in.rdbuf();
    return lintSource(path, contents.str(), enabledRules);
}

std::vector<std::string>
collectSources(const std::vector<std::string>& paths)
{
    namespace fs = std::filesystem;
    static const std::set<std::string> extensions = {".cc", ".hh", ".cpp",
                                                     ".hpp", ".h"};
    std::vector<std::string> out;
    for (const std::string& path : paths) {
        if (fs::is_directory(path)) {
            for (const auto& entry :
                 fs::recursive_directory_iterator(path)) {
                if (entry.is_regular_file()
                    && extensions.count(
                           entry.path().extension().string())
                           > 0) {
                    out.push_back(entry.path().string());
                }
            }
        } else {
            out.push_back(path);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string
formatText(const std::vector<Finding>& findings, std::size_t filesChecked)
{
    std::ostringstream out;
    for (const Finding& f : findings) {
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n    " << f.snippet << "\n";
    }
    out << "bh_lint: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << " in " << filesChecked
        << " file" << (filesChecked == 1 ? "" : "s") << "\n";
    return out.str();
}

std::string
formatJson(const std::vector<Finding>& findings, std::size_t filesChecked)
{
    std::ostringstream out;
    out << "{\n  \"tool\": \"bh_lint\",\n  \"filesChecked\": "
        << filesChecked << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "" : ",") << "\n    {\"file\": \""
            << jsonEscape(f.file) << "\", \"line\": " << f.line
            << ", \"rule\": \"" << jsonEscape(f.rule)
            << "\", \"message\": \"" << jsonEscape(f.message)
            << "\", \"snippet\": \"" << jsonEscape(f.snippet) << "\"}";
    }
    out << (findings.empty() ? "" : "\n  ") << "],\n  \"clean\": "
        << (findings.empty() ? "true" : "false") << "\n}\n";
    return out.str();
}

} // namespace bighouse::lint
