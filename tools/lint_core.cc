#include "lint_core.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "base/logging.hh"

namespace bighouse::lint {

namespace {

// ---------------------------------------------------------------------
// Source preprocessing

/** Per-line view of a file: raw text plus a comment/string-scrubbed copy. */
struct Lines
{
    std::vector<std::string> raw;
    std::vector<std::string> scrubbed;
};

/**
 * Split into lines and blank out comments, string literals, and char
 * literals in the scrubbed copy (replaced with spaces so columns keep
 * their position). Tracks block comments and raw strings across lines.
 */
Lines
preprocess(const std::string& contents)
{
    Lines out;
    std::string line;
    std::istringstream stream(contents);
    bool inBlockComment = false;
    bool inRawString = false;
    std::string rawDelimiter;  // the )delim" that ends the raw string
    while (std::getline(stream, line)) {
        out.raw.push_back(line);
        std::string scrub = line;
        std::size_t i = 0;
        const std::size_t n = line.size();
        while (i < n) {
            if (inBlockComment) {
                if (line.compare(i, 2, "*/") == 0) {
                    scrub[i] = scrub[i + 1] = ' ';
                    i += 2;
                    inBlockComment = false;
                } else {
                    scrub[i++] = ' ';
                }
                continue;
            }
            if (inRawString) {
                if (line.compare(i, rawDelimiter.size(), rawDelimiter)
                    == 0) {
                    for (std::size_t k = 0; k < rawDelimiter.size(); ++k)
                        scrub[i + k] = ' ';
                    i += rawDelimiter.size();
                    inRawString = false;
                } else {
                    scrub[i++] = ' ';
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < n && line[i + 1] == '/') {
                for (std::size_t k = i; k < n; ++k)
                    scrub[k] = ' ';
                break;
            }
            if (c == '/' && i + 1 < n && line[i + 1] == '*') {
                scrub[i] = scrub[i + 1] = ' ';
                i += 2;
                inBlockComment = true;
                continue;
            }
            if (c == 'R' && i + 1 < n && line[i + 1] == '"') {
                // Raw string R"delim( ... )delim"
                std::size_t open = line.find('(', i + 2);
                if (open != std::string::npos) {
                    rawDelimiter =
                        ")" + line.substr(i + 2, open - (i + 2)) + "\"";
                    for (std::size_t k = i; k <= open; ++k)
                        scrub[k] = ' ';
                    i = open + 1;
                    inRawString = true;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                scrub[i++] = ' ';
                while (i < n) {
                    if (line[i] == '\\' && i + 1 < n) {
                        scrub[i] = scrub[i + 1] = ' ';
                        i += 2;
                        continue;
                    }
                    const bool done = line[i] == quote;
                    scrub[i++] = ' ';
                    if (done)
                        break;
                }
                continue;
            }
            ++i;
        }
        out.scrubbed.push_back(std::move(scrub));
    }
    return out;
}

// ---------------------------------------------------------------------
// Suppressions

/** Suppression state parsed from bh-lint annotations. */
struct Suppressions
{
    std::set<std::string> fileWide;
    /// line index (0-based) -> rules allowed on that line and the next
    std::map<std::size_t, std::set<std::string>> byLine;

    bool
    allows(const std::string& rule, std::size_t lineIndex) const
    {
        if (fileWide.count(rule) > 0)
            return true;
        auto hit = [&](std::size_t idx) {
            auto it = byLine.find(idx);
            return it != byLine.end() && it->second.count(rule) > 0;
        };
        return hit(lineIndex)
               || (lineIndex > 0 && hit(lineIndex - 1));
    }
};

/** Split "a, b ,c" into trimmed tokens. */
std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream stream(text);
    while (std::getline(stream, token, ',')) {
        const auto first = token.find_first_not_of(" \t");
        const auto last = token.find_last_not_of(" \t");
        if (first != std::string::npos)
            out.push_back(token.substr(first, last - first + 1));
    }
    return out;
}

Suppressions
parseSuppressions(const std::vector<std::string>& rawLines)
{
    static const std::regex allowRe(
        R"(bh-lint:\s*(allow|allow-file)\(([^)]*)\))");
    Suppressions sup;
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        auto begin = std::sregex_iterator(rawLines[i].begin(),
                                          rawLines[i].end(), allowRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const bool fileWide = (*it)[1].str() == "allow-file";
            for (const std::string& rule : splitList((*it)[2].str())) {
                if (fileWide)
                    sup.fileWide.insert(rule);
                else
                    sup.byLine[i].insert(rule);
            }
        }
    }
    return sup;
}

// ---------------------------------------------------------------------
// Path predicates

/** Normalize separators so path rules behave the same everywhere. */
std::string
normalized(const std::string& path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

/** True when the normalized path contains `component` as a directory or
 * file-stem component (e.g. hasComponent("a/stats/b.cc", "stats")). */
bool
hasComponent(const std::string& path, const std::string& component)
{
    const std::string p = normalized(path);
    std::size_t pos = 0;
    while ((pos = p.find(component, pos)) != std::string::npos) {
        const bool startOk = pos == 0 || p[pos - 1] == '/';
        const std::size_t end = pos + component.size();
        const bool endOk = end == p.size() || p[end] == '/'
                           || p[end] == '.';
        if (startOk && endOk)
            return true;
        pos = end;
    }
    return false;
}

/** The deterministic-time/RNG home: src/base/time.*, src/base/random.*. */
bool
inBaseTimeOrRandom(const std::string& path)
{
    const std::string p = normalized(path);
    return p.find("base/time.") != std::string::npos
           || p.find("base/random.") != std::string::npos;
}

bool
inBaseRandom(const std::string& path)
{
    return normalized(path).find("base/random.") != std::string::npos;
}

/** The logging sink itself: src/base/logging.{hh,cc}. */
bool
inBaseLogging(const std::string& path)
{
    return normalized(path).find("base/logging.") != std::string::npos;
}

// ---------------------------------------------------------------------
// Rules

/** A simple regex-per-line rule. */
struct PatternRule
{
    std::string name;
    std::string summary;
    std::vector<std::regex> patterns;
    std::string message;
    /// Return true when the rule applies to this file at all.
    bool (*applies)(const std::string& path);
};

bool
alwaysApplies(const std::string&)
{
    return true;
}

const std::vector<PatternRule>&
patternRules()
{
    static const std::vector<PatternRule> rules = [] {
        std::vector<PatternRule> r;
        r.push_back(PatternRule{
            "wall-clock",
            "wall-clock reads outside src/base/{time,random}",
            {
                std::regex(R"(chrono::system_clock)"),
                std::regex(R"(\bgettimeofday\s*\()"),
                std::regex(R"(\bstd::time\s*\()"),
                std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0\s*\)|&))"),
                std::regex(R"(\bclock\s*\(\s*\))"),
                std::regex(R"(\blocaltime\s*\(|\bmktime\s*\()"),
            },
            "wall-clock read: simulated components must use engine time "
            "(steady_clock is allowed for supervision watchdogs only)",
            [](const std::string& p) { return !inBaseTimeOrRandom(p); }});
        r.push_back(PatternRule{
            "raw-rand",
            "nondeterministic RNG outside src/base/random",
            {
                std::regex(R"(\b(s?rand|random)\s*\(\s*\))"),
                std::regex(R"(\bsrand\s*\()"),
                std::regex(R"(\brand\s*\(\s*\))"),
                std::regex(R"(\b[dlm]rand48\s*\()"),
                std::regex(R"(\brandom_device\b)"),
                std::regex(R"(\bstd::mt19937(_64)?\b)"),
            },
            "nondeterministic or ad-hoc RNG: draw from a bighouse::Rng "
            "stream derived from the experiment root seed",
            [](const std::string& p) { return !inBaseRandom(p); }});
        r.push_back(PatternRule{
            "raw-new-delete",
            "raw new/delete instead of RAII ownership",
            {
                std::regex(R"(\bnew\s+[A-Za-z_(:<])"),
                // delete-expressions only: "= delete" declarations are
                // the idiomatic way to forbid copies and stay legal.
                std::regex(R"(\bdelete\s*\[\s*\])"),
                std::regex(R"(\bdelete\s+[A-Za-z_*(:])"),
            },
            "raw new/delete: use std::make_unique/containers so slave "
            "teardown and fault paths cannot leak or double-free",
            alwaysApplies});
        r.push_back(PatternRule{
            "float-literal",
            "float literals/types in statistics kernels",
            {
                std::regex(R"(\b\d+\.?\d*([eE][+-]?\d+)?f\b)"),
                std::regex(R"(\bfloat\b)"),
            },
            "statistics kernels are double-precision end to end; float "
            "truncation biases Welford updates and CI half-widths",
            [](const std::string& p) { return hasComponent(p, "stats"); }});
        r.push_back(PatternRule{
            "raw-stderr",
            "direct stderr writes outside src/base/logging and tools/",
            {
                std::regex(R"(\bstd::cerr\b)"),
                std::regex(R"(\bfprintf\s*\(\s*stderr\b)"),
                std::regex(R"(\bperror\s*\()"),
            },
            "raw stderr write: library code must log through "
            "base/logging (single atomic write per line, thread-tagged) "
            "so multi-slave output never interleaves mid-line",
            [](const std::string& p) {
                // CLI front-ends own their terminal; the logging sink is
                // the one place that legitimately writes the stream.
                return !inBaseLogging(p) && !hasComponent(p, "tools");
            }});
        return r;
    }();
    return rules;
}

/** Names + summaries of the non-pattern rules, for the catalog. */
const std::vector<RuleInfo>&
compositeRuleInfo()
{
    static const std::vector<RuleInfo> info = {
        {"unordered-iteration",
         "iteration over unordered containers feeding simulator state"},
        {"rng-seed-plumbing",
         "default-seeded Rng, or Rng stored inside a Distribution"},
    };
    return info;
}

/**
 * unordered-iteration: collect identifiers declared (or bound) as
 * unordered containers in this file, then flag range-for loops over them
 * and explicit .begin() traversals. File-local by design — cross-file
 * aliasing is out of scope for a heuristic linter.
 */
void
checkUnorderedIteration(const std::string& path, const Lines& lines,
                        const Suppressions& sup,
                        std::vector<Finding>& findings)
{
    static const std::regex declRe(
        R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*[;={(])");
    static const std::regex rangeForRe(R"(for\s*\([^:;)]*:\s*(\w+)\s*\))");
    static const std::regex beginRe(R"((\w+)\s*\.\s*begin\s*\()");
    static const std::regex inlineForRe(
        R"(for\s*\([^:;)]*:[^)]*unordered_)");

    std::set<std::string> unorderedNames;
    for (const std::string& line : lines.scrubbed) {
        auto begin =
            std::sregex_iterator(line.begin(), line.end(), declRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            unorderedNames.insert((*it)[1].str());
    }

    const std::string rule = "unordered-iteration";
    auto flag = [&](std::size_t i, const std::string& what) {
        if (sup.allows(rule, i))
            return;
        findings.push_back(Finding{
            path, i + 1, rule,
            "iteration over unordered container '" + what
                + "': hash-order feeds downstream state and varies "
                  "across libstdc++ versions; use a sorted container "
                  "or sort the keys first",
            lines.raw[i]});
    };
    for (std::size_t i = 0; i < lines.scrubbed.size(); ++i) {
        const std::string& line = lines.scrubbed[i];
        auto tryMatches = [&](const std::regex& re) {
            auto begin = std::sregex_iterator(line.begin(), line.end(), re);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                const std::string name = (*it)[1].str();
                if (unorderedNames.count(name) > 0)
                    flag(i, name);
            }
        };
        tryMatches(rangeForRe);
        tryMatches(beginRe);
        if (std::regex_search(line, inlineForRe))
            flag(i, "<temporary>");
    }
}

/**
 * rng-seed-plumbing: a default-constructed Rng collapses every stream to
 * the same fixed seed, and an Rng *stored inside a Distribution* defeats
 * the caller-supplies-the-stream design the per-slave seeding relies on.
 */
void
checkRngSeedPlumbing(const std::string& path, const Lines& lines,
                     const Suppressions& sup,
                     std::vector<Finding>& findings)
{
    // Explicit default construction is always wrong: the fallback seed
    // is a fixed constant, so every such stream is the same stream. A
    // bare `Rng x;` member elsewhere may be seeded in a ctor init-list
    // in another file, so only distribution sources (where storing ANY
    // Rng breaks the sample(Rng&) design) flag the bare declaration.
    static const std::regex defaultCtorRe(
        R"(\bRng\s+\w+\s*(\{\s*\}|=\s*Rng\s*(\(\s*\)|\{\s*\})))");
    static const std::regex bareTempRe(R"(\bRng\s*(\(\s*\)|\{\s*\}))");
    static const std::regex memberRe(R"(\bRng&?\s+\w+\s*(;|\{\s*\};))");

    if (inBaseRandom(path))
        return;
    const bool distribution = hasComponent(path, "distribution");
    const std::string rule = "rng-seed-plumbing";
    for (std::size_t i = 0; i < lines.scrubbed.size(); ++i) {
        const std::string& line = lines.scrubbed[i];
        if (sup.allows(rule, i))
            continue;
        if (std::regex_search(line, defaultCtorRe)
            || std::regex_search(line, bareTempRe)) {
            findings.push_back(Finding{
                path, i + 1, rule,
                "default-seeded Rng: every default-constructed stream is "
                "identical; derive seeds from the experiment root via "
                "Rng::split() or SplitMix64",
                lines.raw[i]});
        } else if (distribution && std::regex_search(line, memberRe)) {
            findings.push_back(Finding{
                path, i + 1, rule,
                "Rng state inside a Distribution: distributions must "
                "draw from the caller-supplied stream (sample(Rng&)) so "
                "per-slave seed derivation stays intact",
                lines.raw[i]});
        }
    }
}

std::string
trimmed(const std::string& text)
{
    const auto first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = [] {
        std::vector<RuleInfo> all;
        for (const PatternRule& rule : patternRules())
            all.push_back(RuleInfo{rule.name, rule.summary});
        for (const RuleInfo& rule : compositeRuleInfo())
            all.push_back(rule);
        std::sort(all.begin(), all.end(),
                  [](const RuleInfo& a, const RuleInfo& b) {
                      return a.name < b.name;
                  });
        return all;
    }();
    return catalog;
}

bool
knownRule(const std::string& name)
{
    for (const RuleInfo& rule : ruleCatalog()) {
        if (rule.name == name)
            return true;
    }
    return false;
}

std::vector<Finding>
lintSource(const std::string& path, const std::string& contents,
           const std::vector<std::string>& enabledRules)
{
    auto enabled = [&](const std::string& rule) {
        return enabledRules.empty()
               || std::find(enabledRules.begin(), enabledRules.end(),
                            rule)
                      != enabledRules.end();
    };

    const Lines lines = preprocess(contents);
    const Suppressions sup = parseSuppressions(lines.raw);
    std::vector<Finding> findings;

    for (const PatternRule& rule : patternRules()) {
        if (!enabled(rule.name) || !rule.applies(path))
            continue;
        for (std::size_t i = 0; i < lines.scrubbed.size(); ++i) {
            if (sup.allows(rule.name, i))
                continue;
            for (const std::regex& pattern : rule.patterns) {
                if (std::regex_search(lines.scrubbed[i], pattern)) {
                    findings.push_back(Finding{path, i + 1, rule.name,
                                               rule.message,
                                               lines.raw[i]});
                    break;  // one finding per rule per line
                }
            }
        }
    }
    if (enabled("unordered-iteration"))
        checkUnorderedIteration(path, lines, sup, findings);
    if (enabled("rng-seed-plumbing"))
        checkRngSeedPlumbing(path, lines, sup, findings);

    for (Finding& finding : findings)
        finding.snippet = trimmed(finding.snippet);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

std::vector<Finding>
lintFile(const std::string& path,
         const std::vector<std::string>& enabledRules)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("bh_lint: cannot read ", path);
    std::ostringstream contents;
    contents << in.rdbuf();
    return lintSource(path, contents.str(), enabledRules);
}

std::vector<std::string>
collectSources(const std::vector<std::string>& paths)
{
    namespace fs = std::filesystem;
    static const std::set<std::string> extensions = {".cc", ".hh", ".cpp",
                                                     ".hpp", ".h"};
    std::vector<std::string> out;
    for (const std::string& path : paths) {
        if (fs::is_directory(path)) {
            for (const auto& entry :
                 fs::recursive_directory_iterator(path)) {
                if (entry.is_regular_file()
                    && extensions.count(
                           entry.path().extension().string())
                           > 0) {
                    out.push_back(entry.path().string());
                }
            }
        } else {
            out.push_back(path);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string
formatText(const std::vector<Finding>& findings, std::size_t filesChecked)
{
    std::ostringstream out;
    for (const Finding& f : findings) {
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n    " << f.snippet << "\n";
    }
    out << "bh_lint: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << " in " << filesChecked
        << " file" << (filesChecked == 1 ? "" : "s") << "\n";
    return out.str();
}

std::string
formatJson(const std::vector<Finding>& findings, std::size_t filesChecked)
{
    std::ostringstream out;
    out << "{\n  \"tool\": \"bh_lint\",\n  \"filesChecked\": "
        << filesChecked << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "" : ",") << "\n    {\"file\": \""
            << jsonEscape(f.file) << "\", \"line\": " << f.line
            << ", \"rule\": \"" << jsonEscape(f.rule)
            << "\", \"message\": \"" << jsonEscape(f.message)
            << "\", \"snippet\": \"" << jsonEscape(f.snippet) << "\"}";
    }
    out << (findings.empty() ? "" : "\n  ") << "],\n  \"clean\": "
        << (findings.empty() ? "true" : "false") << "\n}\n";
    return out.str();
}

} // namespace bighouse::lint
