#include "lint_suppress.hh"

#include <regex>
#include <sstream>

namespace bighouse::lint {

namespace {

/** Split "a, b ,c" into trimmed tokens. */
std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream stream(text);
    while (std::getline(stream, token, ',')) {
        const auto first = token.find_first_not_of(" \t");
        const auto last = token.find_last_not_of(" \t");
        if (first != std::string::npos)
            out.push_back(token.substr(first, last - first + 1));
    }
    return out;
}

} // namespace

bool
Suppressions::allows(const std::string& rule, std::size_t lineIndex)
{
    bool allowed = false;
    for (Entry& entry : entries) {
        if (entry.rule != rule)
            continue;
        const bool hit =
            entry.fileWide || entry.line == lineIndex
            || (lineIndex > 0 && entry.line == lineIndex - 1);
        if (hit) {
            entry.used = true;
            allowed = true;
        }
    }
    return allowed;
}

Suppressions
parseSuppressions(const std::vector<std::string>& rawLines)
{
    static const std::regex allowRe(
        R"(bh-lint:\s*(allow|allow-file)\(([^)]*)\))");
    Suppressions sup;
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        auto begin = std::sregex_iterator(rawLines[i].begin(),
                                          rawLines[i].end(), allowRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const bool fileWide = (*it)[1].str() == "allow-file";
            for (const std::string& rule : splitList((*it)[2].str()))
                sup.entries.push_back(
                    Suppressions::Entry{rule, i, fileWide, false});
        }
    }
    return sup;
}

} // namespace bighouse::lint
