/**
 * @file
 * Token-aware semantic rule families for bh_lint.
 *
 * These rules consume the token stream from lint_tokenizer.hh rather
 * than scrubbed-line regexes, because what they flag is structural:
 *
 *   callback-lifetime    lambdas handed to Engine::schedule /
 *                        scheduleAfter (or stored into an
 *                        EventCallback/InlineCallback) that capture
 *                        locals by reference, or capture a bare `this`
 *                        in a file with no cancel-on-destroy
 *                        discipline. A 48-byte InlineCallback happily
 *                        outlives the frame it captured; the event
 *                        queue may fire it — or destroy it on cancel /
 *                        teardown — long after the frame is gone.
 *
 *   rng-stream-sharing   static/global/thread_local Rng streams, Rng
 *                        reference or pointer members (aliasing a
 *                        stream owned elsewhere), shared_ptr<Rng>, and
 *                        pre-sampling loops that draw through another
 *                        component's `rng` member per iteration
 *                        (bind the stream once outside the loop).
 *                        Per-slave seed independence (paper §3) holds
 *                        only while every component draws from its own
 *                        split stream; a shared stream makes results
 *                        depend on slave interleaving.
 *
 *   atomics-discipline   std::memory_order_relaxed outside src/obs
 *                        (the telemetry slabs are the one audited home
 *                        for relaxed counters), `volatile` used where
 *                        std::atomic is meant, and plain mutation of a
 *                        variable that is elsewhere accessed through
 *                        std::atomic_ref (a data race the type system
 *                        no longer prevents).
 *
 * All heuristics are file-local and deliberately conservative; false
 * positives are silenced in place with `// bh-lint: allow(...)`.
 */

// bh-lint: allow-file(stale-suppression) -- the doc comment above shows
// an example annotation with a placeholder rule list

#ifndef BIGHOUSE_TOOLS_LINT_SEMANTICS_HH
#define BIGHOUSE_TOOLS_LINT_SEMANTICS_HH

#include <string>
#include <vector>

#include "lint_suppress.hh"
#include "lint_tokenizer.hh"

namespace bighouse::lint {

struct Finding;

void checkCallbackLifetime(const std::string& path,
                           const ScanResult& scan, Suppressions& sup,
                           std::vector<Finding>& findings);

void checkRngStreamSharing(const std::string& path,
                           const ScanResult& scan, Suppressions& sup,
                           std::vector<Finding>& findings);

void checkAtomicsDiscipline(const std::string& path,
                            const ScanResult& scan, Suppressions& sup,
                            std::vector<Finding>& findings);

} // namespace bighouse::lint

#endif // BIGHOUSE_TOOLS_LINT_SEMANTICS_HH
