#include "lint_report.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "lint_core.hh"

namespace bighouse::lint {

namespace {

/** FNV-1a 64 over `text` (same constants as the campaign key hash). */
std::uint64_t
fnv1a64(const std::string& text)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** Collapse whitespace runs to single spaces and trim. */
std::string
normalizeSnippet(const std::string& text)
{
    std::string out;
    bool pendingSpace = false;
    for (char c : text) {
        if (c == ' ' || c == '\t' || c == '\r') {
            pendingSpace = !out.empty();
            continue;
        }
        if (pendingSpace) {
            out += ' ';
            pendingSpace = false;
        }
        out += c;
    }
    return out;
}

std::string
hex16(std::uint64_t value)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace

std::string
baselineKey(const Finding& finding)
{
    return normalizedPath(finding.file) + "|" + finding.rule + "|"
           + hex16(fnv1a64(normalizeSnippet(finding.snippet)));
}

Baseline
parseBaseline(const std::string& text)
{
    Baseline out;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        ++out.allowed[line.substr(first, last - first + 1)];
    }
    return out;
}

bool
loadBaselineFile(const std::string& path, Baseline& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream contents;
    contents << in.rdbuf();
    out = parseBaseline(contents.str());
    return true;
}

std::string
formatBaseline(const std::vector<Finding>& findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const Finding& f : findings)
        keys.push_back(baselineKey(f));
    std::sort(keys.begin(), keys.end());
    std::ostringstream out;
    out << "# bh_lint baseline (bighouse-lint-baseline-v1)\n"
        << "# One key per forgiven finding: file|rule|snippet-hash.\n"
        << "# Regenerate with: bh_lint --baseline=FILE --baseline-write "
           "<paths>\n";
    for (const std::string& key : keys)
        out << key << "\n";
    return out.str();
}

RatchetResult
applyBaseline(const std::vector<Finding>& findings,
              const Baseline& baseline)
{
    RatchetResult result;
    std::map<std::string, std::size_t> remaining = baseline.allowed;
    for (const Finding& f : findings) {
        auto it = remaining.find(baselineKey(f));
        if (it != remaining.end() && it->second > 0) {
            --it->second;
            ++result.baselined;
        } else {
            result.fresh.push_back(f);
        }
    }
    for (const auto& [key, count] : remaining) {
        for (std::size_t k = 0; k < count; ++k)
            result.stale.push_back(key);
    }
    return result;
}

std::string
formatSarif(const std::vector<Finding>& findings,
            const std::string& toolVersion)
{
    const auto& catalog = ruleCatalog();
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n    {\n"
        << "      \"tool\": {\n        \"driver\": {\n"
        << "          \"name\": \"bh_lint\",\n"
        << "          \"version\": \"" << jsonEscape(toolVersion)
        << "\",\n"
        << "          \"informationUri\": "
           "\"https://github.com/bighouse/bighouse/blob/main/docs/"
           "static_analysis.md\",\n"
        << "          \"rules\": [";
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        out << (i == 0 ? "" : ",") << "\n            {\"id\": \""
            << jsonEscape(catalog[i].name)
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(catalog[i].summary) << "\"}}";
    }
    out << (catalog.empty() ? "" : "\n          ") << "]\n"
        << "        }\n      },\n"
        << "      \"columnKind\": \"utf16CodeUnits\",\n"
        << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        std::size_t ruleIndex = 0;
        for (std::size_t r = 0; r < catalog.size(); ++r) {
            if (catalog[r].name == f.rule)
                ruleIndex = r;
        }
        out << (i == 0 ? "" : ",") << "\n        {\n"
            << "          \"ruleId\": \"" << jsonEscape(f.rule)
            << "\",\n"
            << "          \"ruleIndex\": " << ruleIndex << ",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": {\"text\": \""
            << jsonEscape(f.message) << "\"},\n"
            << "          \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(normalizedPath(f.file))
            << "\"}, \"region\": {\"startLine\": " << f.line
            << "}}}],\n"
            << "          \"partialFingerprints\": "
               "{\"bhLintKey/v1\": \""
            << jsonEscape(baselineKey(f)) << "\"}\n        }";
    }
    out << (findings.empty() ? "" : "\n      ") << "]\n"
        << "    }\n  ]\n}\n";
    return out.str();
}

} // namespace bighouse::lint
