/**
 * @file
 * Output and workflow layers for bh_lint: SARIF 2.1.0 export (GitHub
 * code-scanning annotations) and the committed-baseline ratchet.
 *
 * Baseline keys are content-stable, not line-stable:
 *
 *     <file>|<rule>|<fnv1a64 of the whitespace-normalized snippet>
 *
 * so moving a baselined finding up or down a file does not break the
 * ratchet, while editing the offending line (or writing a new
 * violation) produces a fresh key and fails. Identical findings are
 * counted: the baseline lists one line per occurrence. The file format
 * is sorted text, one key per line, '#' comments ignored — stable
 * bytes for a given finding set, so `--baseline-write` regenerations
 * diff cleanly.
 */

#ifndef BIGHOUSE_TOOLS_LINT_REPORT_HH
#define BIGHOUSE_TOOLS_LINT_REPORT_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace bighouse::lint {

struct Finding;

/** Content-stable baseline key for one finding. */
std::string baselineKey(const Finding& finding);

/** A loaded baseline: key -> allowed occurrence count. */
struct Baseline
{
    std::map<std::string, std::size_t> allowed;
};

/** Parse baseline text (sorted keys, '#' comments, blank lines ok). */
Baseline parseBaseline(const std::string& text);

/** Load from disk. Returns false (and leaves `out` empty) when the
 * file cannot be read. */
bool loadBaselineFile(const std::string& path, Baseline& out);

/** Serialize findings into baseline text: sorted, one line per
 * occurrence, deterministic bytes. */
std::string formatBaseline(const std::vector<Finding>& findings);

/** Result of ratcheting findings against a baseline. */
struct RatchetResult
{
    std::vector<Finding> fresh;      ///< not in the baseline: failures
    std::size_t baselined = 0;       ///< matched and forgiven
    std::vector<std::string> stale;  ///< baseline keys nothing matched
};

RatchetResult applyBaseline(const std::vector<Finding>& findings,
                            const Baseline& baseline);

/** SARIF 2.1.0 report (stable key order, deterministic bytes). Every
 * result carries its baseline key as a partial fingerprint. */
std::string formatSarif(const std::vector<Finding>& findings,
                        const std::string& toolVersion);

} // namespace bighouse::lint

#endif // BIGHOUSE_TOOLS_LINT_REPORT_HH
