/**
 * @file
 * bh_lint: BigHouse's project-specific determinism and discipline linter.
 *
 * General-purpose analyzers cannot know that a single `rand()` call, an
 * iteration over an `unordered_map` feeding event order, or a lambda
 * that captures a stack frame by reference into the event queue
 * silently breaks SQS termination (paper Eqs. 2-3) and per-slave seed
 * independence. This linter encodes exactly those project rules and
 * runs as a ctest target, so every change lands against them.
 *
 * The engine (since PR 7) is a real tokenizer pass (lint_tokenizer.hh:
 * comments, string/char/raw-string literals, preprocessor logical
 * lines, `#if 0` regions, brace/paren tracking, identifier
 * classification) feeding two rule tiers:
 *
 *   - the legacy pattern rules, which run regexes over the
 *     literal-scrubbed line view (now with strictly fewer false
 *     positives than the PR-2 line scanner), and
 *   - token-aware semantic rules (lint_semantics.hh) for callback
 *     lifetime, RNG stream sharing, and atomics discipline.
 *
 * False positives are silenced in place with an auditable annotation:
 *
 *     codeThatLooksBad();  // bh-lint: allow(rule-name) -- why
 *
 * which suppresses `rule-name` on that line and the line directly below
 * (so the annotation can sit on its own line above a long statement).
 * `// bh-lint: allow-file(rule-name)` anywhere in a file suppresses the
 * rule for the whole file. Multiple rules: allow(rule-a, rule-b).
 * Annotations that stop matching anything become `stale-suppression`
 * findings themselves; a file whose comments merely *show* annotation
 * syntax (like this one) opts out of that audit with
 * `allow-file(stale-suppression)`.
 *
 * Rules (see docs/static_analysis.md for the full rationale):
 *   wall-clock          wall-clock reads outside src/base/{time,random}
 *   raw-rand            libc/std nondeterministic RNG outside src/base/random
 *   unordered-iteration iteration over unordered containers (order feeds
 *                       simulator state or merge order)
 *   raw-new-delete      raw new/delete instead of RAII ownership
 *   float-literal       float literals/types in statistics kernels
 *   rng-seed-plumbing   default-seeded Rng, or Rng state stored inside a
 *                       Distribution (breaks per-slave seed derivation)
 *   raw-stderr          direct stderr writes outside base/logging, tools/
 *   callback-lifetime   by-reference or bare-this captures scheduled
 *                       into the event queue
 *   rng-stream-sharing  static/global/aliased/shared Rng streams, and
 *                       pre-sampling loops drawing through another
 *                       component's rng member
 *   atomics-discipline  relaxed atomics outside src/obs, volatile-as-
 *                       sync, racing past an atomic_ref
 *   stale-suppression   allow() annotations that match nothing
 */

// bh-lint: allow-file(stale-suppression) -- the doc comment above shows
// example annotations with placeholder rule names

#ifndef BIGHOUSE_TOOLS_LINT_CORE_HH
#define BIGHOUSE_TOOLS_LINT_CORE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bighouse::lint {

/** One rule violation at a specific source line. */
struct Finding
{
    std::string file;
    std::size_t line = 0;  ///< 1-based
    std::string rule;
    std::string message;
    std::string snippet;  ///< trimmed source text of the offending line
};

/** Static description of one lint rule. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** All rules this linter knows, in reporting order. */
const std::vector<RuleInfo>& ruleCatalog();

/** True when `name` names a known rule. */
bool knownRule(const std::string& name);

/**
 * Lint one translation unit given its contents. `path` determines
 * path-scoped rules (base exemptions, stats-only float rule, obs-only
 * relaxed atomics) and is normalized with forward slashes before
 * matching. `enabledRules` empty means all rules; the
 * stale-suppression audit judges only annotations for rules that ran.
 */
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& contents,
                                const std::vector<std::string>&
                                    enabledRules = {});

/** Lint a file from disk; fatal() if unreadable. */
std::vector<Finding> lintFile(const std::string& path,
                              const std::vector<std::string>&
                                  enabledRules = {});

/**
 * Recursively collect lintable sources (.cc/.hh/.cpp/.hpp/.h) under each
 * path (files are taken as-is), sorted lexicographically so reports are
 * stable across filesystems.
 */
std::vector<std::string> collectSources(
    const std::vector<std::string>& paths);

/** Human-readable report: "file:line: [rule] message" lines + summary. */
std::string formatText(const std::vector<Finding>& findings,
                       std::size_t filesChecked);

/** Machine-readable JSON report (stable key order). */
std::string formatJson(const std::vector<Finding>& findings,
                       std::size_t filesChecked);

// Shared helpers for the rule modules and report writers.

/** `path` with backslashes normalized to forward slashes. */
std::string normalizedPath(const std::string& path);

/** True when the normalized path contains `component` as a directory
 * or file-stem component (hasPathComponent("a/stats/b.cc", "stats")). */
bool hasPathComponent(const std::string& path,
                      const std::string& component);

/** Minimal JSON string escaping. */
std::string jsonEscape(const std::string& text);

} // namespace bighouse::lint

#endif // BIGHOUSE_TOOLS_LINT_CORE_HH
