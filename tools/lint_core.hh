/**
 * @file
 * bh_lint: BigHouse's project-specific determinism and discipline linter.
 *
 * General-purpose analyzers cannot know that a single `rand()` call or an
 * iteration over an `unordered_map` feeding event order silently breaks
 * SQS termination (paper Eqs. 2-3) and per-slave seed independence. This
 * linter encodes exactly those project rules and runs as a ctest target,
 * so every change lands against them.
 *
 * The scanner is deliberately line-based and heuristic: it scrubs
 * comments and string literals, then pattern-matches the remainder. False
 * positives are expected to be rare and are silenced in place with an
 * auditable annotation:
 *
 *     codeThatLooksBad();  // bh-lint: allow(rule-name)
 *
 * which suppresses `rule-name` on that line and the line directly below
 * (so the annotation can sit on its own line above a long statement).
 * `// bh-lint: allow-file(rule-name)` anywhere in a file suppresses the
 * rule for the whole file. Multiple rules: allow(rule-a, rule-b).
 *
 * Rules (see docs/static_analysis.md for the full rationale):
 *   wall-clock          wall-clock reads outside src/base/{time,random}
 *   raw-rand            libc/std nondeterministic RNG outside src/base/random
 *   unordered-iteration iteration over unordered containers (order feeds
 *                       simulator state or merge order)
 *   raw-new-delete      raw new/delete instead of RAII ownership
 *   float-literal       float literals/types in statistics kernels
 *   rng-seed-plumbing   default-seeded Rng, or Rng state stored inside a
 *                       Distribution (breaks per-slave seed derivation)
 */

#ifndef BIGHOUSE_TOOLS_LINT_CORE_HH
#define BIGHOUSE_TOOLS_LINT_CORE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bighouse::lint {

/** One rule violation at a specific source line. */
struct Finding
{
    std::string file;
    std::size_t line = 0;  ///< 1-based
    std::string rule;
    std::string message;
    std::string snippet;  ///< trimmed source text of the offending line
};

/** Static description of one lint rule. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** All rules this linter knows, in reporting order. */
const std::vector<RuleInfo>& ruleCatalog();

/** True when `name` names a known rule. */
bool knownRule(const std::string& name);

/**
 * Lint one translation unit given its contents. `path` determines
 * path-scoped rules (base exemptions, stats-only float rule) and is
 * normalized with forward slashes before matching. `enabledRules`
 * empty means all rules.
 */
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& contents,
                                const std::vector<std::string>&
                                    enabledRules = {});

/** Lint a file from disk; fatal() if unreadable. */
std::vector<Finding> lintFile(const std::string& path,
                              const std::vector<std::string>&
                                  enabledRules = {});

/**
 * Recursively collect lintable sources (.cc/.hh/.cpp/.hpp/.h) under each
 * path (files are taken as-is), sorted lexicographically so reports are
 * stable across filesystems.
 */
std::vector<std::string> collectSources(
    const std::vector<std::string>& paths);

/** Human-readable report: "file:line: [rule] message" lines + summary. */
std::string formatText(const std::vector<Finding>& findings,
                       std::size_t filesChecked);

/** Machine-readable JSON report (stable key order). */
std::string formatJson(const std::vector<Finding>& findings,
                       std::size_t filesChecked);

} // namespace bighouse::lint

#endif // BIGHOUSE_TOOLS_LINT_CORE_HH
