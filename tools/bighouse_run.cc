/**
 * @file
 * bighouse_run — the command-line front end: load a JSON experiment
 * description, run it to statistical convergence (serially or with the
 * Fig. 3 master/slave parallel protocol), and print the estimates.
 *
 * Usage:
 *   bighouse_run <config.json> [--seed N] [--slaves K]
 *                [--replications R] [--json out.json] [--csv]
 *                [--min-healthy Q] [--watchdog SECONDS]
 *                [--checkpoint file.json] [--resume file.json]
 *                [--dry-run] [--lax]
 *
 * --dry-run parses and validates the config, prints what would run, and
 * exits without simulating. Config keys outside the known schema are a
 * hard error unless --lax is given.
 *
 * With --slaves K the measurement phase is split across K in-process
 * slave simulations with unique seeds and merged histograms (Fig. 3).
 * With --replications R the whole experiment runs R times and the
 * between-replication Student-t intervals are reported instead.
 * --json writes the (serial-run) estimates as machine-readable JSON.
 *
 * Parallel runs are supervised (see docs/robustness.md): --min-healthy
 * sets the merge quorum, --watchdog abandons slaves that stop publishing
 * progress, --checkpoint writes periodic resumable snapshots, and
 * --resume continues an interrupted run from such a snapshot.
 *
 * Observability (docs/observability.md): --trace records event dispatches
 * into bounded ring buffers and writes Chrome trace-event JSON (or JSONL
 * with --trace-format jsonl), --telemetry-out dumps the counter/gauge
 * registry, --convergence-out (serial runs) writes the per-metric
 * convergence time series, --timeline-out exports the simulated-time
 * windowed series (queue depth, busy cores, availability, dispatch and
 * retry waves; `bighouse-timeline-v1` JSONL, or CSV with
 * --timeline-format csv), --status-file keeps a machine-readable status
 * document refreshed atomically while the run is in flight, and
 * --progress prints a live one-line progress indicator to stderr. All of
 * these attach through pull-based hooks, so the simulated event stream —
 * and therefore every estimate — is bit-identical with or without them.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/build_info.hh"
#include "base/logging.hh"
#include "config/config.hh"
#include "core/experiment.hh"
#include "core/replications.hh"
#include "core/report.hh"
#include "core/results_io.hh"
#include "obs/convergence.hh"
#include "obs/status.hh"
#include "obs/telemetry.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "parallel/parallel.hh"

using namespace bighouse;

namespace {

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <config.json> [--seed N] [--slaves K] "
                 "[--replications R] [--json out.json] [--csv] "
                 "[--min-healthy Q] [--watchdog SECONDS] "
                 "[--checkpoint file.json] [--resume file.json] "
                 "[--trace file.json] [--trace-format chrome|jsonl] "
                 "[--telemetry-out file.json] "
                 "[--convergence-out file.json] "
                 "[--timeline-out file] [--timeline-format jsonl|csv] "
                 "[--status-file file.json] [--progress] "
                 "[--dry-run] [--lax] [--version]\n",
                 argv0);
    std::exit(2);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Erase-and-rewrite a TTY progress line on stderr. */
void
printProgressLine(const std::string& line)
{
    std::fprintf(stderr, "\r\033[K%s", line.c_str());
    std::fflush(stderr);
}

void
printEstimates(const std::vector<MetricEstimate>& estimates, bool csv)
{
    TextTable table({"metric", "mean", "ci-halfwidth", "p-quantile",
                     "quantile value", "quantile CI", "samples", "lag"});
    // Name-sorted, so reports diff cleanly regardless of metric
    // registration order.
    for (const MetricEstimate& est : sortedEstimates(estimates)) {
        if (est.quantiles.empty()) {
            table.addRow({est.name, formatG(est.mean, 6),
                          formatG(est.meanHalfWidth, 4), "-", "-", "-",
                          std::to_string(est.accepted),
                          std::to_string(est.lag)});
            continue;
        }
        for (const QuantileEstimate& qe : est.quantiles) {
            std::string ci = "[";
            ci += formatG(qe.lower, 5);
            ci += ", ";
            ci += formatG(qe.upper, 5);
            ci += "]";
            table.addRow({est.name, formatG(est.mean, 6),
                          formatG(est.meanHalfWidth, 4),
                          formatG(qe.q, 4), formatG(qe.value, 6),
                          std::move(ci), std::to_string(est.accepted),
                          std::to_string(est.lag)});
        }
    }
    std::printf("%s", csv ? table.toCsv().c_str()
                          : table.toText().c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    const char* configPath = nullptr;
    const char* jsonPath = nullptr;
    const char* checkpointPath = nullptr;
    const char* resumePath = nullptr;
    const char* tracePath = nullptr;
    const char* telemetryPath = nullptr;
    const char* convergencePath = nullptr;
    const char* timelinePath = nullptr;
    bool timelineCsv = false;
    const char* statusPath = nullptr;
    TraceFormat traceFormat = TraceFormat::Chrome;
    bool progress = false;
    std::uint64_t seed = 1;
    std::size_t slaves = 0;
    std::size_t minHealthy = 1;
    double watchdogSeconds = 0.0;
    std::size_t replications = 0;
    bool csv = false;
    bool dryRun = false;
    bool strict = true;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("%s\n", buildInfoLine("bighouse_run").c_str());
            return 0;
        }
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--slaves") == 0 && i + 1 < argc) {
            slaves = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--min-healthy") == 0
                   && i + 1 < argc) {
            minHealthy = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--watchdog") == 0
                   && i + 1 < argc) {
            watchdogSeconds = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--checkpoint") == 0
                   && i + 1 < argc) {
            checkpointPath = argv[++i];
        } else if (std::strcmp(argv[i], "--resume") == 0
                   && i + 1 < argc) {
            resumePath = argv[++i];
        } else if (std::strcmp(argv[i], "--replications") == 0
                   && i + 1 < argc) {
            replications = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-format") == 0
                   && i + 1 < argc) {
            traceFormat = traceFormatFromName(argv[++i]);
        } else if (std::strcmp(argv[i], "--telemetry-out") == 0
                   && i + 1 < argc) {
            telemetryPath = argv[++i];
        } else if (std::strcmp(argv[i], "--convergence-out") == 0
                   && i + 1 < argc) {
            convergencePath = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline-out") == 0
                   && i + 1 < argc) {
            timelinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline-format") == 0
                   && i + 1 < argc) {
            const char* fmt = argv[++i];
            if (std::strcmp(fmt, "jsonl") == 0)
                timelineCsv = false;
            else if (std::strcmp(fmt, "csv") == 0)
                timelineCsv = true;
            else
                fatal("--timeline-format must be jsonl or csv, got ", fmt);
        } else if (std::strcmp(argv[i], "--status-file") == 0
                   && i + 1 < argc) {
            statusPath = argv[++i];
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            progress = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            csv = true;
        } else if (std::strcmp(argv[i], "--dry-run") == 0) {
            dryRun = true;
        } else if (std::strcmp(argv[i], "--lax") == 0) {
            strict = false;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else if (configPath == nullptr) {
            configPath = argv[i];
        } else {
            usage(argv[0]);
        }
    }
    if (configPath == nullptr)
        usage(argv[0]);
    if (slaves > 0 && replications > 0)
        fatal("--slaves and --replications are mutually exclusive");
    if (resumePath != nullptr && slaves == 0)
        fatal("--resume needs --slaves (it resumes a parallel run)");
    if ((checkpointPath != nullptr || minHealthy != 1
         || watchdogSeconds != 0.0)
        && slaves == 0)
        fatal("--checkpoint/--min-healthy/--watchdog apply to parallel "
              "runs; add --slaves K");
    if (convergencePath != nullptr && slaves > 0)
        fatal("--convergence-out records a single simulation's series; "
              "it applies to serial runs only");
    if (replications > 0
        && (tracePath != nullptr || telemetryPath != nullptr
            || convergencePath != nullptr || statusPath != nullptr
            || timelinePath != nullptr))
        fatal("--trace/--telemetry-out/--convergence-out/--timeline-out/"
              "--status-file are not supported with --replications");

    const Config config = Config::fromFile(configPath);
    ExperimentSpec spec = Experiment::specFromConfig(config, strict);
    // --timeline-out on a config without a timeline block attaches the
    // default spec (1 s windows, every track) — the flag is the ask.
    if (timelinePath != nullptr && !spec.timeline.has_value())
        spec.timeline = TimelineSpec{};

    if (dryRun) {
        const char* model = "fcfs";
        switch (spec.serverModel) {
          case ServerModel::Fcfs: model = "fcfs"; break;
          case ServerModel::ProcessorSharing: model = "ps"; break;
          case ServerModel::DreamWeaver: model = "dreamweaver"; break;
          case ServerModel::PowerNap: model = "powernap"; break;
        }
        std::printf("dry run: %s\n", configPath);
        std::printf("  cluster: %zu x %u-core %s server(s), "
                    "loadFactor %.6g\n",
                    spec.servers, spec.coresPerServer, model,
                    spec.loadFactor);
        std::printf("  sqs: accuracy %.6g, confidence %.6g, seed %llu, "
                    "%s\n",
                    spec.sqs.accuracy, spec.sqs.confidence,
                    static_cast<unsigned long long>(seed),
                    slaves == 0 ? "serial"
                                : "parallel (see --slaves)");
        std::printf("  capping: %s\n",
                    spec.capping.has_value() ? "enabled" : "none");
        std::printf("validated; nothing simulated\n");
        return 0;
    }

    if (replications > 0) {
        const Experiment experiment(std::move(spec));
        const ReplicatedResult result =
            runReplicated(experiment, replications, seed);
        TextTable table({"metric", "mean", "t-halfwidth", "quantile",
                         "quantile t-halfwidth", "replications"});
        for (const ReplicatedMetric& metric : result.metrics) {
            table.addRow({metric.name, formatG(metric.mean, 6),
                          formatG(metric.halfWidth, 4),
                          formatG(metric.quantileMean, 6),
                          formatG(metric.quantileHalfWidth, 4),
                          std::to_string(metric.replications)});
        }
        std::printf("%s", csv ? table.toCsv().c_str()
                              : table.toText().c_str());
        return result.allConverged ? 0 : 1;
    }

    if (slaves == 0) {
        const Experiment experiment(std::move(spec));
        TraceSet traces;
        TelemetryRegistry telemetry;
        ConvergenceRecorder recorder;
        const auto wallStart = std::chrono::steady_clock::now();
        auto lastTick = wallStart;

        // One batch observer multiplexes every surface; estimates are
        // snapshotted once per tick, never inside event callbacks.
        const auto instrument = [&](SqsSimulation& sim) {
            if (tracePath != nullptr)
                traces.attach(sim.engine(), "serial");
            if (convergencePath == nullptr && statusPath == nullptr
                && telemetryPath == nullptr && !progress)
                return;
            sim.setBatchObserver([&](const SqsSimulation& s,
                                     std::uint64_t events) {
                if (convergencePath != nullptr)
                    recorder.observe(s.stats(), events);
                if (telemetryPath != nullptr) {
                    // Absolute-value samples: re-running every batch
                    // just refreshes the same cells.
                    TelemetrySlab& slab = telemetry.slab("serial");
                    sampleEngineTelemetry(slab, s.engine());
                    sampleStatsTelemetry(slab, s.stats());
                    slab.add(TelemetryCounter::BatchesObserved);
                }
                if (statusPath == nullptr && !progress)
                    return;
                // Status/TTY ticks are wall-clock throttled; the
                // simulated stream is untouched either way.
                const auto now = std::chrono::steady_clock::now();
                if (std::chrono::duration<double>(now - lastTick).count()
                        < 0.25
                    && events != 0)
                    return;
                lastTick = now;
                const auto estimates = s.stats().estimates();
                if (statusPath != nullptr)
                    writeStatusFile(
                        statusPath,
                        serialStatusJson(estimates, events,
                                         secondsSince(wallStart), false,
                                         false, nullptr));
                if (progress)
                    printProgressLine(
                        serialProgressLine(estimates, events));
            });
        };

        const SqsResult result = experiment.run(seed, instrument);
        if (progress)
            std::fprintf(stderr, "\r\033[K");
        if (statusPath != nullptr)
            writeStatusFile(
                statusPath,
                serialStatusJson(result.estimates, result.events,
                                 secondsSince(wallStart), true,
                                 result.converged,
                                 terminationReasonName(
                                     result.termination)));
        if (tracePath != nullptr)
            traces.write(tracePath, traceFormat);
        if (convergencePath != nullptr)
            recorder.write(convergencePath);
        if (telemetryPath != nullptr) {
            // The run is quiescent; pull the final engine/stats state.
            TelemetrySlab& slab = telemetry.slab("serial");
            sampleRngTelemetry(slab);
            slab.set(TelemetryCounter::EventsExecuted, result.events);
            // Under the recurrence backend "events" are tasks; surface
            // them under their own name so dashboards can tell which
            // execution path produced the run.
            slab.set(TelemetryCounter::RecurrenceTasks,
                     result.backend == SimBackend::Recurrence
                         ? result.events
                         : 0);
            slab.setGauge(TelemetryGauge::RunSeconds,
                          result.wallSeconds);
            if (result.failures.has_value())
                sampleFailureTelemetry(slab, *result.failures);
            telemetry.write(telemetryPath);
        }
        if (timelinePath != nullptr) {
            if (!result.timeline.has_value())
                fatal("--timeline-out given but the run produced no "
                      "timeline");
            const std::vector<TimelineData> sources = {*result.timeline};
            if (timelineCsv)
                writeTimelineCsv(timelinePath, sources);
            else
                writeTimelineJsonl(timelinePath, sources);
        }
        if (!csv)
            std::printf("%s\n", summarizeRun(result).c_str());
        if (jsonPath != nullptr)
            writeResult(jsonPath, result);
        printEstimates(result.estimates, csv);
        return result.converged ? 0 : 1;
    }

    auto experiment = std::make_shared<Experiment>(std::move(spec));
    ParallelConfig parallel;
    parallel.slaves = slaves;
    parallel.sqs = experiment->specification().sqs;
    parallel.minHealthySlaves = minHealthy;
    parallel.watchdogSeconds = watchdogSeconds;
    if (checkpointPath != nullptr)
        parallel.checkpointPath = checkpointPath;

    TraceSet traces;
    TelemetryRegistry telemetry;
    const auto trackLabel = [](std::size_t index, bool isMaster) {
        return isMaster ? std::string("master")
                        : "slave-" + std::to_string(index);
    };
    if (tracePath != nullptr) {
        parallel.instrument = [&traces, &trackLabel](SqsSimulation& sim,
                                                     std::size_t index,
                                                     bool isMaster) {
            traces.attach(sim.engine(), trackLabel(index, isMaster));
        };
    }
    if (telemetryPath != nullptr) {
        // Runs on the slave's own thread after it quiesces, so the
        // thread-local RNG tally is the slave's own.
        parallel.onSlaveDone = [&telemetry,
                                &trackLabel](const SqsSimulation& sim,
                                             std::size_t index) {
            TelemetrySlab& slab =
                telemetry.slab(trackLabel(index, false));
            sampleEngineTelemetry(slab, sim.engine());
            sampleStatsTelemetry(slab, sim.stats());
            sampleRngTelemetry(slab);
            if (sim.failureProbe())
                sampleFailureTelemetry(slab, sim.failureProbe()());
        };
    }
    if (statusPath != nullptr || progress) {
        parallel.progress =
            [statusPath, progress](const ParallelProgressSnapshot& snap) {
                const bool terminal = snap.phase == "merged";
                if (statusPath != nullptr)
                    writeStatusFile(statusPath,
                                    parallelStatusJson(snap, terminal));
                if (progress)
                    printProgressLine(parallelProgressLine(snap));
            };
    }

    ParallelRunner runner(
        [experiment](SqsSimulation& sim) { experiment->buildInto(sim); },
        parallel);
    const ParallelResult result =
        resumePath != nullptr ? runner.resume(readCheckpoint(resumePath))
                              : runner.run(seed);
    if (progress)
        std::fprintf(stderr, "\r\033[K");
    if (tracePath != nullptr)
        traces.write(tracePath, traceFormat);
    if (telemetryPath != nullptr)
        telemetry.write(telemetryPath);
    if (timelinePath != nullptr) {
        if (result.timelines.empty())
            fatal("--timeline-out given but the run produced no "
                  "timelines");
        if (timelineCsv)
            writeTimelineCsv(timelinePath, result.timelines);
        else
            writeTimelineJsonl(timelinePath, result.timelines);
    }
    if (!csv) {
        std::printf("parallel run: %zu slaves (%zu healthy), %llu total "
                    "events, %.3fs wall, %s [%s]%s\n",
                    slaves, result.healthySlaves,
                    static_cast<unsigned long long>(result.totalEvents),
                    result.wallSeconds,
                    result.converged ? "converged" : "NOT converged",
                    terminationReasonName(result.termination),
                    result.degraded ? " (degraded)" : "");
        if (result.failures.has_value()) {
            std::printf("%s\n",
                        summarizeFailures(*result.failures).c_str());
        }
        if (result.resumedBaseEvents != 0) {
            std::printf("resumed: %llu events inherited from the "
                        "checkpoint\n",
                        static_cast<unsigned long long>(
                            result.resumedBaseEvents));
        }
        for (std::size_t s = 0; s < result.slaveReports.size(); ++s) {
            const SlaveReport& report = result.slaveReports[s];
            if (report.status == SlaveStatus::Ok)
                continue;
            std::printf("slave %zu: %s%s%s%s\n", s,
                        slaveStatusName(report.status),
                        report.abandoned ? " (abandoned)" : "",
                        report.error.empty() ? "" : " — ",
                        report.error.c_str());
        }
    }
    printEstimates(result.estimates, csv);
    return result.converged ? 0 : 1;
}
