/**
 * @file
 * bighouse_workload_gen — materialize the five Table-1 workloads as
 * empirical .dist histogram files (the repo's stand-in for the
 * trace-derived distribution files the original BigHouse release ships).
 *
 * Usage:
 *   bighouse_workload_gen <output-dir> [--samples N] [--bins B] [--seed S]
 *
 * Produces <dir>/<name>.arrival.dist and <dir>/<name>.service.dist for
 * dns, mail, shell, google, and web; load them back with
 * bighouse::loadWorkload().
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/build_info.hh"
#include "base/random.hh"
#include "workload/library.hh"

using namespace bighouse;

int
main(int argc, char** argv)
{
    const char* directory = nullptr;
    std::size_t samples = 200000;
    std::size_t bins = 2000;
    std::uint64_t seed = 0xB16B01;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("%s\n",
                        buildInfoLine("bighouse_workload_gen").c_str());
            return 0;
        }
        if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
            samples = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--bins") == 0 && i + 1 < argc) {
            bins = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: %s <output-dir> [--samples N] [--bins B] "
                         "[--seed S]\n",
                         argv[0]);
            return 2;
        } else {
            directory = argv[i];
        }
    }
    if (directory == nullptr) {
        std::fprintf(stderr, "usage: %s <output-dir> [--samples N] "
                             "[--bins B] [--seed S]\n",
                     argv[0]);
        return 2;
    }

    Rng rng(seed);
    const auto written = writeWorkloadFiles(directory, rng, samples, bins);
    for (const std::string& path : written)
        std::printf("wrote %s\n", path.c_str());
    std::printf("%zu files (%zu samples, %zu bins each)\n", written.size(),
                samples, bins);
    return 0;
}
