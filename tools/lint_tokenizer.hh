/**
 * @file
 * A real C++ tokenizer for bh_lint.
 *
 * The PR-2 scanner blanked comments and string literals with a per-line
 * state machine; it mishandled raw-string delimiters, leaked literal
 * text through line continuations, and saw code inside `#if 0` blocks.
 * This tokenizer does one honest pass over the translation unit and
 * produces two synchronized views:
 *
 *   - a token stream (identifiers classified against the C++ keyword
 *     set, pp-numbers with digit separators, string/char literals, raw
 *     strings with arbitrary delimiters, multi-char punctuators, one
 *     Directive token per preprocessor logical line) with the physical
 *     line/column and brace/paren depth of every token, and
 *   - per-line "scrubbed" text where comment and literal characters are
 *     replaced by spaces (columns preserved), which the legacy regex
 *     rules keep consuming — now with strictly fewer false positives.
 *
 * Handled constructs the old scanner got wrong: `R"delim(...)delim"`
 * (including a raw string whose body contains `)"` or another raw
 * string), backslash-newline continuations inside line comments,
 * string literals, and preprocessor directives, digit separators
 * (`1'000'000` is one number, not a char literal), `#if 0`/`#endif`
 * regions (inert, nesting-aware, `#else` reactivates), and multi-line
 * block comments that end mid-line.
 */

#ifndef BIGHOUSE_TOOLS_LINT_TOKENIZER_HH
#define BIGHOUSE_TOOLS_LINT_TOKENIZER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bighouse::lint {

enum class TokenKind {
    Identifier,   ///< non-keyword identifier
    Keyword,      ///< C++ keyword (see isCppKeyword)
    Number,       ///< pp-number: 1'000, 0x1p-3, 1.5e9, 42_udl
    String,       ///< ordinary or raw string literal (text is scrubbed)
    CharLiteral,  ///< character literal
    Punct,        ///< punctuator, maximal munch ("::", "->", "+=", ...)
    Directive,    ///< one per preprocessor logical line; text = name
};

struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    std::size_t line = 0;  ///< 1-based physical line where token starts
    std::size_t col = 0;   ///< 0-based column on that line
    int braceDepth = 0;    ///< {} nesting at the token (before it opens)
    int parenDepth = 0;    ///< () nesting at the token (before it opens)
};

struct ScanResult
{
    std::vector<Token> tokens;
    std::vector<std::string> raw;       ///< physical source lines
    std::vector<std::string> scrubbed;  ///< literals/comments blanked
};

/** Tokenize one translation unit. Never fails: malformed input degrades
 * to best-effort tokens (unterminated literals close at end of line). */
ScanResult scanSource(const std::string& contents);

/** True when `word` is a C++ keyword (C++20 set). */
bool isCppKeyword(const std::string& word);

} // namespace bighouse::lint

#endif // BIGHOUSE_TOOLS_LINT_TOKENIZER_HH
