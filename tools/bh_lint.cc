/**
 * @file
 * bh_lint command line: scan sources for BigHouse determinism and
 * discipline violations (see tools/lint_core.hh for the rule set).
 *
 * Usage:
 *   bh_lint [options] <file-or-dir>...
 *
 * Options:
 *   --format=text|json   report style (default text)
 *   --output=FILE        also write the report to FILE
 *   --rules=a,b,c        run only the named rules
 *   --list-rules         print the rule catalog and exit
 *
 * Exit status: 0 clean, 1 findings reported, 2 usage/IO error.
 * Registered as the `lint.sources` ctest entry so `ctest` fails when a
 * violation lands; scripts/check_lint.sh is the standalone wrapper.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/build_info.hh"
#include "lint_core.hh"

namespace {

int
usage()
{
    std::cerr << "usage: bh_lint [--format=text|json] [--output=FILE]\n"
                 "               [--rules=a,b,c] [--list-rules] "
                 "<file-or-dir>...\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace bighouse::lint;

    std::string format = "text";
    std::string outputPath;
    std::vector<std::string> rules;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--version") {
            std::cout << bighouse::buildInfoLine("bh_lint") << "\n";
            return 0;
        }
        if (arg == "--list-rules") {
            for (const RuleInfo& rule : ruleCatalog())
                std::cout << rule.name << ": " << rule.summary << "\n";
            return 0;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json")
                return usage();
        } else if (arg.rfind("--output=", 0) == 0) {
            outputPath = arg.substr(9);
        } else if (arg.rfind("--rules=", 0) == 0) {
            std::string list = arg.substr(8);
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string rule = list.substr(
                    start, comma == std::string::npos ? comma
                                                      : comma - start);
                if (!rule.empty()) {
                    if (!knownRule(rule)) {
                        std::cerr << "bh_lint: unknown rule '" << rule
                                  << "' (try --list-rules)\n";
                        return 2;
                    }
                    rules.push_back(rule);
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage();

    const std::vector<std::string> sources = collectSources(paths);
    std::vector<Finding> findings;
    for (const std::string& source : sources) {
        std::vector<Finding> fileFindings = lintFile(source, rules);
        findings.insert(findings.end(), fileFindings.begin(),
                        fileFindings.end());
    }

    const std::string report =
        format == "json" ? formatJson(findings, sources.size())
                         : formatText(findings, sources.size());
    std::cout << report;
    if (!outputPath.empty()) {
        std::ofstream out(outputPath);
        if (!out) {
            std::cerr << "bh_lint: cannot write " << outputPath << "\n";
            return 2;
        }
        out << report;
    }
    return findings.empty() ? 0 : 1;
}
