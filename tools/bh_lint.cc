/**
 * @file
 * bh_lint command line: scan sources for BigHouse determinism and
 * discipline violations (see tools/lint_core.hh for the rule set).
 *
 * Usage:
 *   bh_lint [options] <file-or-dir>...
 *
 * Options:
 *   --format=text|json|sarif  report style (default text)
 *   --sarif                   shorthand for --format=sarif
 *   --output=FILE             also write the report to FILE
 *   --rules=a,b,c             run only the named rules
 *   --strip-prefix=PREFIX     strip PREFIX from reported paths (makes
 *                             reports, SARIF URIs, and baseline keys
 *                             machine-independent)
 *   --baseline=FILE           ratchet mode: findings whose key is in
 *                             FILE are forgiven; only fresh findings
 *                             fail. Stale keys are warned about.
 *   --baseline-write          with --baseline=FILE: regenerate FILE
 *                             from the current findings (sorted,
 *                             content-stable) and exit 0
 *   --quiet                   no report output; exit code only
 *   --list-rules              print the rule catalog and exit
 *
 * Exit status: 0 clean (or all findings baselined), 1 findings
 * reported, 2 usage/IO error. Registered as the `lint.sources` ctest
 * entry so `ctest` fails when a violation lands; scripts/check_lint.sh
 * is the standalone wrapper.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/build_info.hh"
#include "lint_core.hh"
#include "lint_report.hh"

namespace {

int
usage()
{
    std::cerr
        << "usage: bh_lint [--format=text|json|sarif] [--sarif]\n"
           "               [--output=FILE] [--rules=a,b,c]\n"
           "               [--strip-prefix=PREFIX] [--baseline=FILE]\n"
           "               [--baseline-write] [--quiet] [--list-rules]\n"
           "               <file-or-dir>...\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace bighouse::lint;

    std::string format = "text";
    std::string outputPath;
    std::string stripPrefix;
    std::string baselinePath;
    bool baselineWrite = false;
    bool quiet = false;
    std::vector<std::string> rules;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--version") {
            std::cout << bighouse::buildInfoLine("bh_lint") << "\n";
            return 0;
        }
        if (arg == "--list-rules") {
            for (const RuleInfo& rule : ruleCatalog())
                std::cout << rule.name << ": " << rule.summary << "\n";
            return 0;
        }
        if (arg == "--sarif") {
            format = "sarif";
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json"
                && format != "sarif")
                return usage();
        } else if (arg.rfind("--output=", 0) == 0) {
            outputPath = arg.substr(9);
        } else if (arg.rfind("--strip-prefix=", 0) == 0) {
            stripPrefix = arg.substr(15);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baselinePath = arg.substr(11);
        } else if (arg == "--baseline-write") {
            baselineWrite = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--rules=", 0) == 0) {
            std::string list = arg.substr(8);
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string rule = list.substr(
                    start, comma == std::string::npos ? comma
                                                      : comma - start);
                if (!rule.empty()) {
                    if (!knownRule(rule)) {
                        std::cerr << "bh_lint: unknown rule '" << rule
                                  << "' (try --list-rules)\n";
                        return 2;
                    }
                    rules.push_back(rule);
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage();
    if (baselineWrite && baselinePath.empty()) {
        std::cerr << "bh_lint: --baseline-write needs --baseline=FILE\n";
        return 2;
    }

    const std::vector<std::string> sources = collectSources(paths);
    std::vector<Finding> findings;
    for (const std::string& source : sources) {
        std::vector<Finding> fileFindings = lintFile(source, rules);
        findings.insert(findings.end(), fileFindings.begin(),
                        fileFindings.end());
    }
    if (!stripPrefix.empty()) {
        for (Finding& f : findings) {
            const std::string norm = normalizedPath(f.file);
            if (norm.rfind(stripPrefix, 0) == 0)
                f.file = norm.substr(stripPrefix.size());
        }
    }

    if (baselineWrite) {
        std::ofstream out(baselinePath);
        if (!out) {
            std::cerr << "bh_lint: cannot write " << baselinePath
                      << "\n";
            return 2;
        }
        out << formatBaseline(findings);
        if (!quiet)
            std::cout << "bh_lint: wrote " << findings.size()
                      << " baseline key"
                      << (findings.size() == 1 ? "" : "s") << " to "
                      << baselinePath << "\n";
        return 0;
    }

    std::size_t baselined = 0;
    std::vector<std::string> stale;
    if (!baselinePath.empty()) {
        Baseline baseline;
        if (!loadBaselineFile(baselinePath, baseline)) {
            std::cerr << "bh_lint: cannot read baseline "
                      << baselinePath << "\n";
            return 2;
        }
        RatchetResult ratchet = applyBaseline(findings, baseline);
        findings = std::move(ratchet.fresh);
        baselined = ratchet.baselined;
        stale = std::move(ratchet.stale);
    }

    const std::string report =
        format == "json"    ? formatJson(findings, sources.size())
        : format == "sarif" ? formatSarif(findings,
                                          bighouse::buildInfo()
                                              .gitDescribe)
                            : formatText(findings, sources.size());
    if (!quiet)
        std::cout << report;
    if (!quiet && !baselinePath.empty()) {
        std::cout << "bh_lint: " << baselined << " baselined finding"
                  << (baselined == 1 ? "" : "s") << " forgiven\n";
        for (const std::string& key : stale)
            std::cout << "bh_lint: warning: stale baseline entry "
                      << key << " (fixed? regenerate with "
                         "--baseline-write)\n";
    }
    if (!outputPath.empty()) {
        std::ofstream out(outputPath);
        if (!out) {
            std::cerr << "bh_lint: cannot write " << outputPath << "\n";
            return 2;
        }
        out << report;
    }
    return findings.empty() ? 0 : 1;
}
