/**
 * @file
 * bh_campaign — declarative parameter sweeps over one shared slave pool.
 *
 * Usage:
 *   bh_campaign run <campaign.json> [--seed N] [--dry-run] [--lax]
 *                   [--max-points N] [--csv]
 *   bh_campaign status <campaign.json> [--lax] [--csv]
 *   bh_campaign export <campaign.json> [--lax] [--csv | --json]
 *                      [--out FILE]
 *
 * `run` expands the campaign, probes the content-addressed result cache,
 * and simulates only the missing points (across one shared slave pool);
 * the manifest under the cache directory is rewritten after every point,
 * so a killed campaign resumes by simply running again. `--dry-run`
 * prints the plan — points, seeds, cache hits — without simulating or
 * touching the cache. `--max-points N` stops after N uncached points
 * (the deterministic stand-in for an interrupted sweep). `status` shows
 * the per-point cache state; `export` emits every cached result as CSV
 * (default) or JSON, metrics in sorted, stable order.
 *
 * Exit status: 0 when every point has a converged-or-cached result, 1
 * when any point is pending or failed, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "base/build_info.hh"
#include "base/logging.hh"
#include "campaign/campaign.hh"
#include "campaign/runner.hh"
#include "config/config.hh"
#include "obs/status.hh"
#include "obs/telemetry.hh"
#include "obs/timeline.hh"

using namespace bighouse;

namespace {

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s run <campaign.json> [--seed N] [--dry-run] "
                 "[--lax] [--max-points N] [--csv] "
                 "[--status-file file.json] [--telemetry-out file.json] "
                 "[--progress]\n"
                 "       %s status <campaign.json> [--lax] [--csv]\n"
                 "       %s export <campaign.json> [--lax] "
                 "[--csv | --json] [--out FILE] "
                 "[--timeline-out FILE [--timeline-format jsonl|csv]]\n"
                 "       %s --version\n",
                 argv0, argv0, argv0, argv0);
    std::exit(2);
}

/** Erase-and-rewrite a TTY progress line on stderr. */
void
printProgressLine(const std::string& line)
{
    std::fprintf(stderr, "\r\033[K%s", line.c_str());
    std::fflush(stderr);
}

void
printSummary(const CampaignReport& report, std::size_t points)
{
    std::printf("campaign %s: %zu point(s) — %zu cached, %zu ran, "
                "%zu failed, %zu pending\n",
                report.complete() ? "complete" : "INCOMPLETE", points,
                report.cached, report.ran, report.failed,
                report.pending);
}

void
emit(const std::string& text, const char* outPath)
{
    if (outPath == nullptr) {
        std::printf("%s", text.c_str());
        return;
    }
    std::ofstream out(outPath);
    if (!out)
        fatal("cannot open ", outPath, " for writing");
    out << text;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--version") == 0) {
        std::printf("%s\n", buildInfoLine("bh_campaign").c_str());
        return 0;
    }
    if (argc < 3)
        usage(argv[0]);
    const std::string command = argv[1];
    const char* configPath = nullptr;
    const char* outPath = nullptr;
    const char* timelinePath = nullptr;
    bool timelineCsvOut = false;
    const char* statusPath = nullptr;
    const char* telemetryPath = nullptr;
    bool progress = false;
    CampaignOptions options;
    bool csv = false;
    bool json = false;

    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--max-points") == 0
                   && i + 1 < argc) {
            options.maxPoints = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline-out") == 0
                   && i + 1 < argc) {
            timelinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline-format") == 0
                   && i + 1 < argc) {
            const char* fmt = argv[++i];
            if (std::strcmp(fmt, "jsonl") == 0)
                timelineCsvOut = false;
            else if (std::strcmp(fmt, "csv") == 0)
                timelineCsvOut = true;
            else
                fatal("--timeline-format must be jsonl or csv, got ", fmt);
        } else if (std::strcmp(argv[i], "--status-file") == 0
                   && i + 1 < argc) {
            statusPath = argv[++i];
        } else if (std::strcmp(argv[i], "--telemetry-out") == 0
                   && i + 1 < argc) {
            telemetryPath = argv[++i];
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            progress = true;
        } else if (std::strcmp(argv[i], "--dry-run") == 0) {
            options.dryRun = true;
        } else if (std::strcmp(argv[i], "--lax") == 0) {
            options.strict = false;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            csv = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else if (configPath == nullptr) {
            configPath = argv[i];
        } else {
            usage(argv[0]);
        }
    }
    if (configPath == nullptr || (csv && json))
        usage(argv[0]);

    const Config config = Config::fromFile(configPath);
    CampaignSpec spec = campaignSpecFromConfig(config, options.strict);

    if (statusPath != nullptr || telemetryPath != nullptr || progress) {
        if (command != "run")
            fatal("--status-file/--telemetry-out/--progress apply to "
                  "`run` only");
    }
    if (timelinePath != nullptr && command != "export")
        fatal("--timeline-out applies to `export` only");

    if (command == "run") {
        // The progress callback needs runner.points() for the per-point
        // axes, so the runner is built after the callback captures the
        // (stable) pointer slot. The runner never invokes progress from
        // its constructor.
        std::unique_ptr<CampaignRunner> runner;
        if (statusPath != nullptr || progress) {
            options.progress = [&runner, statusPath, progress](
                                   const CampaignReport& report,
                                   bool terminal) {
                if (statusPath != nullptr)
                    writeStatusFile(statusPath,
                                    campaignStatusJson(runner->points(),
                                                       report, terminal));
                if (progress)
                    printProgressLine(campaignProgressLine(report));
            };
        }
        runner = std::make_unique<CampaignRunner>(std::move(spec),
                                                  options);
        const CampaignReport report = runner->run();
        if (progress)
            std::fprintf(stderr, "\r\033[K");
        if (telemetryPath != nullptr) {
            TelemetryRegistry telemetry;
            TelemetrySlab& slab = telemetry.slab("campaign");
            slab.set(TelemetryCounter::PointsCached, report.cached);
            slab.set(TelemetryCounter::PointsRan, report.ran);
            slab.set(TelemetryCounter::PointsFailed, report.failed);
            slab.set(TelemetryCounter::PointsPending, report.pending);
            telemetry.write(telemetryPath);
        }
        const TextTable table =
            campaignStatusTable(runner->points(), report);
        std::printf("%s", csv ? table.toCsv().c_str()
                              : table.toText().c_str());
        if (options.dryRun) {
            std::printf("dry run: %zu point(s), %zu cache hit(s), "
                        "%zu to simulate — nothing simulated\n",
                        runner->points().size(), report.cached,
                        report.pending);
            return 0;
        }
        printSummary(report, runner->points().size());
        for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
            const PointOutcome& outcome = report.outcomes[i];
            if (outcome.status == PointStatus::Failed)
                std::printf("point %zu failed: %s\n", i,
                            outcome.error.c_str());
        }
        return report.complete() ? 0 : 1;
    }

    if (command == "status") {
        options.dryRun = true;
        CampaignRunner runner(std::move(spec), options);
        const CampaignReport report = runner.plan();
        const TextTable table =
            campaignStatusTable(runner.points(), report);
        std::printf("%s", csv ? table.toCsv().c_str()
                              : table.toText().c_str());
        printSummary(report, runner.points().size());
        return report.complete() ? 0 : 1;
    }

    if (command == "export") {
        options.dryRun = true;
        CampaignRunner runner(std::move(spec), options);
        const CampaignReport report = runner.plan();
        if (json) {
            emit(campaignExportJson(runner.points(), report).dump(2)
                     + "\n",
                 outPath);
        } else {
            emit(campaignExportTable(runner.points(), report).toCsv(),
                 outPath);
        }
        if (timelinePath != nullptr) {
            // Timelines ride the result cache, so every cached point
            // whose base config carries a `timeline` block contributes a
            // "point-N" source to one concatenated export.
            std::vector<TimelineData> sources;
            for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
                const PointOutcome& outcome = report.outcomes[i];
                if (outcome.status != PointStatus::Cached
                    && outcome.status != PointStatus::Ran)
                    continue;
                if (!outcome.result.timeline.has_value())
                    continue;
                TimelineData data = *outcome.result.timeline;
                data.source = "point-" + std::to_string(i);
                sources.push_back(std::move(data));
            }
            if (sources.empty())
                fatal("--timeline-out: no cached point carries a "
                      "timeline (add a `timeline` block to the base "
                      "config and re-run the campaign)");
            if (timelineCsvOut)
                writeTimelineCsv(timelinePath, sources);
            else
                writeTimelineJsonl(timelinePath, sources);
        }
        return report.complete() ? 0 : 1;
    }

    usage(argv[0]);
    return 2;
}
