#include "lint_tokenizer.hh"

#include <array>
#include <cctype>
#include <set>

namespace bighouse::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/** Raw-string literal prefixes: the encoding prefix is optional but the
 * trailing R is what commits the next '"' to raw-string rules. */
bool
isRawPrefix(const std::string& word)
{
    return word == "R" || word == "LR" || word == "uR" || word == "UR"
           || word == "u8R";
}

/**
 * Cursor over the physical lines of a file. End-of-line is modelled as
 * a virtual '\n' so scanners can treat newlines as ordinary
 * terminators; advancing past it moves to the next line.
 */
struct Cursor
{
    const std::vector<std::string>& lines;
    std::vector<std::string>& scrub;
    std::size_t li = 0;
    std::size_t ci = 0;

    bool
    atEnd() const
    {
        return li >= lines.size();
    }

    bool
    atEol() const
    {
        return ci >= lines[li].size();
    }

    char
    ch() const
    {
        return atEol() ? '\n' : lines[li][ci];
    }

    /** Character `k` ahead on the same line ('\n' past the end). */
    char
    peek(std::size_t k = 1) const
    {
        return ci + k >= lines[li].size() ? '\n' : lines[li][ci + k];
    }

    void
    next()
    {
        if (atEol()) {
            ++li;
            ci = 0;
        } else {
            ++ci;
        }
    }

    /** Blank the current character in the scrubbed view. */
    void
    blank()
    {
        if (!atEol())
            scrub[li][ci] = ' ';
    }

    void
    blankNext()
    {
        blank();
        next();
    }

    /** True at a backslash-newline splice (optional trailing CR). */
    bool
    atSplice() const
    {
        if (atEol() || ch() != '\\')
            return false;
        std::size_t k = ci + 1;
        if (k < lines[li].size() && lines[li][k] == '\r')
            ++k;
        return k >= lines[li].size();
    }

    /** Blank the splice backslash (and CR) and move to the next line. */
    void
    skipSplice()
    {
        while (!atEol())
            blankNext();
        next();  // past the virtual newline
    }
};

struct Tokenizer
{
    Cursor cur;
    std::vector<Token>& tokens;
    int braceDepth = 0;
    int parenDepth = 0;

    void
    emit(TokenKind kind, std::string text, std::size_t line,
         std::size_t col)
    {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line + 1;
        t.col = col;
        t.braceDepth = braceDepth;
        t.parenDepth = parenDepth;
        tokens.push_back(std::move(t));
    }

    /** `//` comment: blanked to end of logical line (splices continue
     * the comment onto the next physical line). */
    void
    lineComment()
    {
        while (!cur.atEnd() && !cur.atEol()) {
            if (cur.atSplice()) {
                cur.skipSplice();
                continue;
            }
            cur.blankNext();
        }
    }

    /** Block comment, possibly spanning lines or ending mid-line. */
    void
    blockComment()
    {
        cur.blankNext();  // '/'
        cur.blankNext();  // '*'
        while (!cur.atEnd()) {
            if (cur.atEol()) {
                cur.next();
                continue;
            }
            if (cur.ch() == '*' && cur.peek() == '/') {
                cur.blankNext();
                cur.blankNext();
                return;
            }
            cur.blankNext();
        }
    }

    /**
     * Ordinary string or char literal starting at the quote. Escapes
     * and splices are honored; an unterminated literal closes at end
     * of line so one bad line cannot scrub the rest of the file.
     */
    void
    quotedLiteral(char quote)
    {
        const std::size_t line = cur.li;
        const std::size_t col = cur.ci;
        cur.blankNext();  // opening quote
        while (!cur.atEnd() && !cur.atEol()) {
            if (cur.atSplice()) {
                cur.skipSplice();
                if (cur.atEnd())
                    break;
                continue;
            }
            if (cur.ch() == '\\') {
                cur.blankNext();
                if (!cur.atEol())
                    cur.blankNext();
                continue;
            }
            if (cur.ch() == quote) {
                cur.blankNext();
                break;
            }
            cur.blankNext();
        }
        emit(quote == '"' ? TokenKind::String : TokenKind::CharLiteral,
             std::string(1, quote), line, col);
    }

    /**
     * Raw string literal; cursor sits on the opening '"' after an
     * R-suffixed prefix. No escape or splice processing inside (the
     * standard un-splices raw-string bodies). Returns false when the
     * delimiter is malformed, in which case nothing was consumed.
     */
    bool
    rawString(std::size_t line, std::size_t col)
    {
        const std::string& text = cur.lines[cur.li];
        const std::size_t open = text.find('(', cur.ci + 1);
        if (open == std::string::npos || open - cur.ci - 1 > 16)
            return false;
        const std::string closing =
            ")" + text.substr(cur.ci + 1, open - cur.ci - 1) + "\"";
        while (cur.ci <= open)
            cur.blankNext();
        while (!cur.atEnd()) {
            if (cur.atEol()) {
                cur.next();
                continue;
            }
            if (cur.lines[cur.li].compare(cur.ci, closing.size(),
                                          closing)
                == 0) {
                for (std::size_t k = 0; k < closing.size(); ++k)
                    cur.blankNext();
                break;
            }
            cur.blankNext();
        }
        emit(TokenKind::String, "R\"", line, col);
        return true;
    }

    /** pp-number: integers, floats, hex floats, digit separators, and
     * user-defined-literal suffixes as one token. */
    void
    number()
    {
        const std::size_t line = cur.li;
        const std::size_t col = cur.ci;
        std::string text;
        char prev = 0;
        while (!cur.atEnd() && !cur.atEol()) {
            const char c = cur.ch();
            const bool expSign = (c == '+' || c == '-')
                                 && (prev == 'e' || prev == 'E'
                                     || prev == 'p' || prev == 'P');
            const bool separator = c == '\'' && identChar(cur.peek());
            if (!identChar(c) && c != '.' && !expSign && !separator)
                break;
            text += c;
            prev = c;
            cur.next();
        }
        emit(TokenKind::Number, std::move(text), line, col);
    }

    /** Identifier or keyword; commits to a raw string when the word is
     * an R prefix directly followed by '"'. Tokens are emitted unless
     * `silent` (directive bodies). */
    void
    word(bool silent)
    {
        const std::size_t line = cur.li;
        const std::size_t col = cur.ci;
        std::string text;
        while (!cur.atEnd() && !cur.atEol() && identChar(cur.ch())) {
            text += cur.ch();
            if (silent)
                cur.blankNext();  // directive bodies leave no scrubbed text
            else
                cur.next();
        }
        if (isRawPrefix(text) && !cur.atEol() && cur.ch() == '"') {
            if (rawString(line, col)) {
                if (silent && !tokens.empty())
                    tokens.pop_back();
                return;
            }
        }
        if (!silent) {
            // Classify before the move: argument evaluation order is
            // unspecified, so isCppKeyword(text) inside the emit call
            // could observe the moved-from string.
            const TokenKind kind = isCppKeyword(text)
                                       ? TokenKind::Keyword
                                       : TokenKind::Identifier;
            emit(kind, std::move(text), line, col);
        }
    }

    /** Maximal-munch punctuator. */
    void
    punct()
    {
        static const std::array<const char*, 4> three = {"<<=", ">>=",
                                                         "...", "->*"};
        static const std::array<const char*, 17> two = {
            "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
            "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&"};
        static const std::array<const char*, 2> two2 = {"||", "<<"};
        const std::size_t line = cur.li;
        const std::size_t col = cur.ci;
        std::string text(1, cur.ch());
        text += cur.peek(1) == '\n' ? ' ' : cur.peek(1);
        text += cur.peek(2) == '\n' ? ' ' : cur.peek(2);
        std::size_t len = 1;
        for (const char* p : three) {
            if (text.compare(0, 3, p) == 0)
                len = 3;
        }
        if (len == 1) {
            for (const char* p : two) {
                if (text.compare(0, 2, p) == 0)
                    len = 2;
            }
            for (const char* p : two2) {
                if (text.compare(0, 2, p) == 0)
                    len = 2;
            }
        }
        // ">>" is left as two tokens so template argument lists close
        // correctly for the scope tracker; "<<" stays fused.
        if (len == 2 && text.compare(0, 2, ">>") == 0)
            len = 1;
        text.resize(len);
        const char c = text[0];
        if (len == 1 && c == '}')
            braceDepth = braceDepth > 0 ? braceDepth - 1 : 0;
        if (len == 1 && c == ')')
            parenDepth = parenDepth > 0 ? parenDepth - 1 : 0;
        emit(TokenKind::Punct, text, line, col);
        if (len == 1 && c == '{')
            ++braceDepth;
        if (len == 1 && c == '(')
            ++parenDepth;
        for (std::size_t k = 0; k < len; ++k)
            cur.next();
    }

    /** True when every character before `ci` on this line is blank. */
    bool
    onlyWhitespaceBefore() const
    {
        const std::string& text = cur.lines[cur.li];
        for (std::size_t k = 0; k < cur.ci; ++k) {
            if (text[k] != ' ' && text[k] != '\t')
                return false;
        }
        return true;
    }

    /** Directive name on the raw line at `li` ("" if not a directive). */
    static std::string
    directiveName(const std::string& text)
    {
        std::size_t k = text.find_first_not_of(" \t");
        if (k == std::string::npos || text[k] != '#')
            return "";
        k = text.find_first_not_of(" \t", k + 1);
        std::string name;
        while (k != std::string::npos && k < text.size()
               && identChar(text[k]))
            name += text[k++];
        return name;
    }

    /** Condition text of an `#if` line, comments stripped, trimmed. */
    static std::string
    ifCondition(const std::string& text)
    {
        std::size_t k = text.find('#');
        k = text.find("if", k);
        if (k == std::string::npos)
            return "";
        k += 2;
        std::string rest = text.substr(k);
        for (const char* comment : {"//", "/*"}) {
            const std::size_t c = rest.find(comment);
            if (c != std::string::npos)
                rest.resize(c);
        }
        const std::size_t first = rest.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            return "";
        const std::size_t last = rest.find_last_not_of(" \t\r");
        return rest.substr(first, last - first + 1);
    }

    /** Blank an entire physical line and step past it. */
    void
    blankLine()
    {
        while (!cur.atEol())
            cur.blankNext();
        cur.next();
    }

    /**
     * `#if 0` region: everything through the matching `#endif` is
     * inert — blanked, no tokens. Nested conditionals tracked; an
     * `#else` at the outermost inactive level reactivates (an `#elif`
     * stays inactive: its condition is unknowable here).
     */
    void
    inactiveRegion()
    {
        int depth = 1;
        blankLine();  // the `#if 0` line itself
        while (!cur.atEnd() && depth > 0) {
            const std::string name = directiveName(cur.lines[cur.li]);
            if (name == "if" || name == "ifdef" || name == "ifndef") {
                ++depth;
            } else if (name == "endif") {
                --depth;
            } else if (name == "else" && depth == 1) {
                depth = 0;
            }
            blankLine();
        }
    }

    /**
     * Active preprocessor directive: one Directive token, the whole
     * logical line — including backslash-continued physical lines —
     * blanked in the scrubbed view (macro bodies are not reliable
     * rule input), comments and literals given their usual handling
     * so a block comment opened in a directive still closes.
     */
    void
    directive()
    {
        const std::size_t line = cur.li;
        const std::size_t col = cur.ci;
        const std::string name = directiveName(cur.lines[cur.li]);
        if (name == "if") {
            const std::string cond = ifCondition(cur.lines[cur.li]);
            if (cond == "0" || cond == "false") {
                inactiveRegion();
                return;
            }
        }
        emit(TokenKind::Directive, name, line, col);
        while (!cur.atEnd() && !cur.atEol()) {
            if (cur.atSplice()) {
                cur.skipSplice();
                continue;
            }
            const char c = cur.ch();
            if (c == '/' && cur.peek() == '/') {
                lineComment();
                break;
            }
            if (c == '/' && cur.peek() == '*') {
                blockComment();
                continue;
            }
            if (c == '"') {
                quotedLiteral('"');
                tokens.pop_back();
                continue;
            }
            if (c == '\'') {
                quotedLiteral('\'');
                tokens.pop_back();
                continue;
            }
            if (identStart(c)) {
                word(/*silent=*/true);
                continue;
            }
            cur.blankNext();
        }
    }

    void
    run()
    {
        while (!cur.atEnd()) {
            if (cur.atEol()) {
                cur.next();
                continue;
            }
            const char c = cur.ch();
            if (c == ' ' || c == '\t' || c == '\r'
                || c == '\f' || c == '\v') {
                cur.next();
                continue;
            }
            if (c == '#' && onlyWhitespaceBefore()) {
                directive();
                continue;
            }
            if (c == '/' && cur.peek() == '/') {
                lineComment();
                continue;
            }
            if (c == '/' && cur.peek() == '*') {
                blockComment();
                continue;
            }
            if (c == '"') {
                quotedLiteral('"');
                continue;
            }
            if (c == '\'') {
                quotedLiteral('\'');
                continue;
            }
            if (cur.atSplice()) {
                cur.skipSplice();
                continue;
            }
            if (identStart(c)) {
                word(/*silent=*/false);
                continue;
            }
            if (isDigit(c) || (c == '.' && isDigit(cur.peek()))) {
                number();
                continue;
            }
            punct();
        }
    }
};

} // namespace

bool
isCppKeyword(const std::string& word)
{
    static const std::set<std::string> keywords = {
        "alignas", "alignof", "and", "and_eq", "asm", "auto", "bitand",
        "bitor", "bool", "break", "case", "catch", "char", "char8_t",
        "char16_t", "char32_t", "class", "compl", "concept", "const",
        "consteval", "constexpr", "constinit", "const_cast", "continue",
        "co_await", "co_return", "co_yield", "decltype", "default",
        "delete", "do", "double", "dynamic_cast", "else", "enum",
        "explicit", "export", "extern", "false", "float", "for",
        "friend", "goto", "if", "inline", "int", "long", "mutable",
        "namespace", "new", "noexcept", "not", "not_eq", "nullptr",
        "operator", "or", "or_eq", "private", "protected", "public",
        "register", "reinterpret_cast", "requires", "return", "short",
        "signed", "sizeof", "static", "static_assert", "static_cast",
        "struct", "switch", "template", "this", "thread_local", "throw",
        "true", "try", "typedef", "typeid", "typename", "union",
        "unsigned", "using", "virtual", "void", "volatile", "wchar_t",
        "while", "xor", "xor_eq",
    };
    return keywords.count(word) > 0;
}

ScanResult
scanSource(const std::string& contents)
{
    ScanResult out;
    std::size_t start = 0;
    while (start <= contents.size()) {
        const std::size_t nl = contents.find('\n', start);
        if (nl == std::string::npos) {
            if (start < contents.size())
                out.raw.push_back(contents.substr(start));
            break;
        }
        out.raw.push_back(contents.substr(start, nl - start));
        start = nl + 1;
    }
    out.scrubbed = out.raw;
    Tokenizer tok{Cursor{out.raw, out.scrubbed}, out.tokens};
    tok.run();
    return out;
}

} // namespace bighouse::lint
