#include "lint_semantics.hh"

#include <cstddef>
#include <set>

#include "lint_core.hh"

namespace bighouse::lint {

namespace {

using Tokens = std::vector<Token>;

bool
isPunct(const Token& t, const char* text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

/** Index of the previous non-directive token, or npos. */
std::size_t
prevTok(const Tokens& toks, std::size_t i)
{
    while (i > 0) {
        --i;
        if (toks[i].kind != TokenKind::Directive)
            return i;
    }
    return std::string::npos;
}

/** Index of the next non-directive token, or npos. */
std::size_t
nextTok(const Tokens& toks, std::size_t i)
{
    for (++i; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Directive)
            return i;
    }
    return std::string::npos;
}

void
emit(const std::string& path, const std::string& rule,
     const Token& at, const std::string& message, Suppressions& sup,
     const ScanResult& scan, std::vector<Finding>& findings)
{
    const std::size_t lineIndex = at.line - 1;
    if (sup.allows(rule, lineIndex))
        return;
    findings.push_back(Finding{
        path, at.line, rule, message,
        lineIndex < scan.raw.size() ? scan.raw[lineIndex] : ""});
}

// ---------------------------------------------------------------------
// callback-lifetime

/** One parsed lambda capture list. */
struct CaptureList
{
    std::size_t open = 0;   ///< index of '['
    std::size_t close = 0;  ///< index of matching ']'
    bool refDefault = false;
    bool bareThis = false;
    std::vector<std::string> refNames;  ///< named by-reference captures
};

/**
 * Parse the capture list of a lambda whose '[' sits at `i`; returns
 * false when `[` is not a lambda introducer (subscript, attribute).
 */
bool
parseCaptures(const Tokens& toks, std::size_t i, CaptureList& out)
{
    const std::size_t p = prevTok(toks, i);
    if (p != std::string::npos) {
        const Token& prev = toks[p];
        // After an expression, '[' is a subscript; "[[" is an
        // attribute.
        if (prev.kind == TokenKind::Identifier
            || prev.kind == TokenKind::Number
            || prev.kind == TokenKind::String || isPunct(prev, ")")
            || isPunct(prev, "]") || isPunct(prev, "["))
            return false;
    }
    const std::size_t n1 = nextTok(toks, i);
    if (n1 != std::string::npos && isPunct(toks[n1], "["))
        return false;  // attribute [[...]]

    out.open = i;
    int depth = 0;
    bool entryStart = true;
    std::size_t k = i;
    while (true) {
        k = nextTok(toks, k);
        if (k == std::string::npos)
            return false;
        const Token& t = toks[k];
        if (depth == 0 && isPunct(t, "]")) {
            out.close = k;
            break;
        }
        if (isPunct(t, "(") || isPunct(t, "[") || isPunct(t, "{")) {
            ++depth;
            entryStart = false;
            continue;
        }
        if (isPunct(t, ")") || isPunct(t, "]") || isPunct(t, "}")) {
            --depth;
            continue;
        }
        if (depth > 0)
            continue;
        if (isPunct(t, ",")) {
            entryStart = true;
            continue;
        }
        if (entryStart && isPunct(t, "&")) {
            const std::size_t nn = nextTok(toks, k);
            if (nn != std::string::npos
                && toks[nn].kind == TokenKind::Identifier) {
                out.refNames.push_back(toks[nn].text);
                k = nn;
            } else {
                out.refDefault = true;
            }
            entryStart = false;
            continue;
        }
        if (entryStart && t.kind == TokenKind::Keyword
            && t.text == "this") {
            out.bareThis = true;
            entryStart = false;
            continue;
        }
        entryStart = false;
    }
    // A lambda introducer is followed by its parameter list or body.
    const std::size_t after = nextTok(toks, out.close);
    if (after == std::string::npos)
        return false;
    const Token& t = toks[after];
    return isPunct(t, "(") || isPunct(t, "{") || isPunct(t, "<")
           || isPunct(t, "->")
           || (t.kind == TokenKind::Keyword
               && (t.text == "mutable" || t.text == "noexcept"
                   || t.text == "constexpr"));
}

/**
 * Name of the call this lambda is a direct argument of ("" if none):
 * walk back from the '[' to the unmatched '(' and take the identifier
 * before it.
 */
std::string
enclosingCallee(const Tokens& toks, std::size_t lambdaOpen)
{
    int depth = 0;
    std::size_t k = lambdaOpen;
    while (true) {
        k = prevTok(toks, k);
        if (k == std::string::npos)
            return "";
        const Token& t = toks[k];
        if (isPunct(t, ")") || isPunct(t, "]") || isPunct(t, "}")) {
            ++depth;
            continue;
        }
        if (isPunct(t, "(")) {
            if (depth == 0) {
                const std::size_t c = prevTok(toks, k);
                if (c != std::string::npos
                    && toks[c].kind == TokenKind::Identifier)
                    return toks[c].text;
                return "";
            }
            --depth;
            continue;
        }
        if (isPunct(t, "[") || isPunct(t, "{")) {
            if (depth == 0)
                return "";
            --depth;
            continue;
        }
        if (depth == 0 && isPunct(t, ";"))
            return "";
    }
}

/** True when the lambda at '[' initializes an EventCallback or
 * InlineCallback variable: `EventCallback cb = [..]` / `cb{[..]}`. */
bool
initializesEventCallback(const Tokens& toks, std::size_t lambdaOpen)
{
    std::size_t p = prevTok(toks, lambdaOpen);
    if (p == std::string::npos)
        return false;
    if (!isPunct(toks[p], "=") && !isPunct(toks[p], "{")
        && !isPunct(toks[p], "("))
        return false;
    std::size_t name = prevTok(toks, p);
    if (name == std::string::npos
        || toks[name].kind != TokenKind::Identifier)
        return false;
    std::size_t type = prevTok(toks, name);
    if (type == std::string::npos)
        return false;
    return toks[type].text == "EventCallback"
           || toks[type].text == "InlineCallback";
}

} // namespace

void
checkCallbackLifetime(const std::string& path, const ScanResult& scan,
                      Suppressions& sup, std::vector<Finding>& findings)
{
    const std::string rule = "callback-lifetime";
    const Tokens& toks = scan.tokens;

    bool fileHasCancel = false;
    for (const Token& t : toks) {
        if (t.kind == TokenKind::Identifier
            && (t.text == "cancel" || t.text == "cancelEvent")) {
            fileHasCancel = true;
            break;
        }
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isPunct(toks[i], "["))
            continue;
        CaptureList cap;
        if (!parseCaptures(toks, i, cap))
            continue;
        if (!cap.refDefault && cap.refNames.empty() && !cap.bareThis)
            continue;

        const std::string callee = enclosingCallee(toks, i);
        const bool scheduled =
            callee == "schedule" || callee == "scheduleAfter";
        if (!scheduled && !initializesEventCallback(toks, i))
            continue;

        if (cap.refDefault || !cap.refNames.empty()) {
            std::string what =
                cap.refDefault ? "[&]" : "'" + cap.refNames.front() + "'";
            emit(path, rule, toks[i],
                 "scheduled callback captures " + what
                     + " by reference: the event queue invokes (or "
                       "destroys, on cancel/teardown) the callback "
                       "long after this frame is gone — capture by "
                       "value",
                 sup, scan, findings);
        } else if (cap.bareThis && !fileHasCancel) {
            emit(path, rule, toks[i],
                 "scheduled callback captures `this` but this file "
                 "never cancels an event: if *this is destroyed "
                 "before the event fires, the callback dangles — "
                 "store the EventId and cancel it on destroy, or "
                 "capture the needed state by value",
                 sup, scan, findings);
        }
    }
}

// ---------------------------------------------------------------------
// rng-stream-sharing

void
checkRngStreamSharing(const std::string& path, const ScanResult& scan,
                      Suppressions& sup, std::vector<Finding>& findings)
{
    const std::string rule = "rng-stream-sharing";
    if (normalizedPath(path).find("base/random.") != std::string::npos)
        return;
    const Tokens& toks = scan.tokens;

    // Scope stack: what kind of brace region each '{' opened. For this
    // rule only three classifications matter: namespace/top level
    // (static duration), class body (member), anything else (local).
    enum class Scope { Namespace, Class, Other };
    std::vector<Scope> stack;
    auto classify = [&](std::size_t open) {
        // Walk the span back to the previous statement boundary.
        std::size_t k = open;
        bool sawParen = false;
        while (true) {
            k = prevTok(toks, k);
            if (k == std::string::npos)
                break;
            const Token& t = toks[k];
            if (isPunct(t, ";") || isPunct(t, "{") || isPunct(t, "}"))
                break;
            if (isPunct(t, ")"))
                sawParen = true;
            if (t.kind == TokenKind::Keyword) {
                if (t.text == "namespace")
                    return Scope::Namespace;
                if (t.text == "class" || t.text == "struct"
                    || t.text == "union" || t.text == "enum")
                    return Scope::Class;
            }
        }
        (void)sawParen;
        return Scope::Other;
    };
    auto currentScope = [&]() {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (*it == Scope::Class)
                return Scope::Class;
            if (*it == Scope::Other)
                return Scope::Other;
        }
        return Scope::Namespace;
    };

    static const std::set<std::string> qualifiers = {
        "static",   "thread_local", "inline", "constexpr",
        "mutable",  "extern",       "const",  "constinit",
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (isPunct(t, "{")) {
            stack.push_back(classify(i));
            continue;
        }
        if (isPunct(t, "}")) {
            if (!stack.empty())
                stack.pop_back();
            continue;
        }

        // shared_ptr<Rng>: a reference-counted stream is a shared
        // stream no matter where it lives.
        if (t.kind == TokenKind::Identifier && t.text == "shared_ptr") {
            const std::size_t lt = nextTok(toks, i);
            const std::size_t arg =
                lt == std::string::npos ? lt : nextTok(toks, lt);
            if (lt != std::string::npos && isPunct(toks[lt], "<")
                && arg != std::string::npos
                && toks[arg].text == "Rng") {
                emit(path, rule, t,
                     "shared_ptr<Rng>: a reference-counted stream is "
                     "drawn from by every holder, so draw order (and "
                     "results) depend on scheduling — each component "
                     "owns its own split stream",
                     sup, scan, findings);
            }
            continue;
        }

        if (t.kind != TokenKind::Identifier || t.text != "Rng")
            continue;

        const std::size_t p = prevTok(toks, i);
        if (p != std::string::npos
            && (isPunct(toks[p], "(") || isPunct(toks[p], ",")
                || isPunct(toks[p], "<")))
            continue;  // parameter or template argument, not a decl

        // Leading qualifiers: static / thread_local make the stream
        // shared across every slave that touches this code.
        bool staticDuration = false;
        for (std::size_t q = p; q != std::string::npos;
             q = prevTok(toks, q)) {
            const Token& qt = toks[q];
            if (qt.kind == TokenKind::Keyword
                && qualifiers.count(qt.text) > 0) {
                if (qt.text == "static" || qt.text == "thread_local")
                    staticDuration = true;
                continue;
            }
            break;
        }

        // Parse the declarator: Rng [&|*] name <terminator>.
        bool aliasing = false;
        std::size_t k = nextTok(toks, i);
        while (k != std::string::npos
               && (isPunct(toks[k], "&") || isPunct(toks[k], "*")
                   || isPunct(toks[k], "&&")
                   || (toks[k].kind == TokenKind::Keyword
                       && toks[k].text == "const"))) {
            if (!isPunct(toks[k], "const"))
                aliasing = aliasing || isPunct(toks[k], "&")
                           || isPunct(toks[k], "*")
                           || isPunct(toks[k], "&&");
            k = nextTok(toks, k);
        }
        if (k == std::string::npos
            || toks[k].kind != TokenKind::Identifier)
            continue;  // temporary, cast, or other non-declaration use
        const std::size_t after = nextTok(toks, k);
        if (after == std::string::npos || isPunct(toks[after], "("))
            continue;  // function returning Rng(&): not a stream object
        if (!isPunct(toks[after], ";") && !isPunct(toks[after], "=")
            && !isPunct(toks[after], "{") && !isPunct(toks[after], "["))
            continue;

        const Scope scope = currentScope();
        if (staticDuration) {
            emit(path, rule, t,
                 "static-duration Rng '" + toks[k].text
                     + "': one stream shared by every slave breaks "
                       "per-slave seed independence (paper §3) — "
                       "derive a per-owner stream from the experiment "
                       "root seed",
                 sup, scan, findings);
        } else if (scope == Scope::Namespace) {
            emit(path, rule, t,
                 "global Rng '" + toks[k].text
                     + "': a file-scope stream is shared by every "
                       "slave context — thread the stream in from the "
                       "per-slave seed derivation instead",
                 sup, scan, findings);
        } else if (scope == Scope::Class && aliasing) {
            emit(path, rule, t,
                 "Rng reference/pointer member '" + toks[k].text
                     + "' aliases a stream owned elsewhere: two owners "
                       "interleave draws nondeterministically — own an "
                       "Rng by value, seeded from the owner's split "
                       "stream",
                 sup, scan, findings);
        }
    }

    // Pre-sampling loops that reach through another component's stream:
    // `station.rng.exponential(...)` inside a for/while body draws from
    // a stream the loop does not own. Even when the draw *order* works
    // out today, the reach-through couples the loop to the owner's
    // stream discipline (and re-resolves the member chain per
    // iteration). The sanctioned shape — used by the recurrence
    // backend's array fills — binds the owner's stream once outside
    // the loop (`Rng& stream = station.rng;`) and draws from the local
    // reference, keeping one visible owner per stream per scope.
    static const std::set<std::string> drawMethods = {
        "next",        "uniform01", "uniform",  "below",
        "gaussian",    "exponential", "bernoulli", "split",
    };
    std::vector<std::pair<std::size_t, std::size_t>> loopBodies;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::Keyword
            || (t.text != "for" && t.text != "while"))
            continue;
        std::size_t k = nextTok(toks, i);
        if (k == std::string::npos || !isPunct(toks[k], "("))
            continue;
        int parens = 0;
        while (k != std::string::npos) {
            if (isPunct(toks[k], "("))
                ++parens;
            else if (isPunct(toks[k], ")") && --parens == 0)
                break;
            k = nextTok(toks, k);
        }
        const std::size_t body =
            k == std::string::npos ? k : nextTok(toks, k);
        if (body == std::string::npos)
            continue;
        std::size_t end = body;
        if (isPunct(toks[body], "{")) {
            int braces = 0;
            while (end != std::string::npos) {
                if (isPunct(toks[end], "{"))
                    ++braces;
                else if (isPunct(toks[end], "}") && --braces == 0)
                    break;
                end = nextTok(toks, end);
            }
        } else {
            while (end != std::string::npos && !isPunct(toks[end], ";"))
                end = nextTok(toks, end);
        }
        if (end != std::string::npos)
            loopBodies.emplace_back(body, end);
    }
    std::set<std::size_t> flagged;  // nested loops see a site twice
    for (const auto& [lo, hi] : loopBodies) {
        for (std::size_t j = lo;
             j != std::string::npos && j <= hi; j = nextTok(toks, j)) {
            if (toks[j].kind != TokenKind::Identifier
                || toks[j].text != "rng")
                continue;
            const std::size_t dot = prevTok(toks, j);
            if (dot == std::string::npos
                || (!isPunct(toks[dot], ".") && !isPunct(toks[dot], "->")))
                continue;
            const std::size_t owner = prevTok(toks, dot);
            // `this->rng` (keyword owner) is the component drawing from
            // its own member; `foo().rng` chains are out of heuristic
            // reach. Only a plain identifier owner is flaggable.
            if (owner == std::string::npos
                || toks[owner].kind != TokenKind::Identifier)
                continue;
            const std::size_t m = nextTok(toks, j);
            if (m == std::string::npos || !isPunct(toks[m], "."))
                continue;
            const std::size_t method = nextTok(toks, m);
            if (method == std::string::npos
                || toks[method].kind != TokenKind::Identifier
                || drawMethods.count(toks[method].text) == 0)
                continue;
            const std::size_t call = nextTok(toks, method);
            if (call == std::string::npos || !isPunct(toks[call], "("))
                continue;
            if (!flagged.insert(j).second)
                continue;
            emit(path, rule, toks[j],
                 "pre-sampling loop draws through '" + toks[owner].text
                     + ".rng." + toks[method].text
                     + "()': the loop reaches into a stream owned by "
                       "another component on every iteration — bind it "
                       "once outside the loop (Rng& stream = "
                     + toks[owner].text
                     + ".rng) and draw from the local reference, the "
                       "per-source discipline the DES and the "
                       "recurrence backend's array fills share",
                 sup, scan, findings);
        }
    }
}

// ---------------------------------------------------------------------
// atomics-discipline

void
checkAtomicsDiscipline(const std::string& path, const ScanResult& scan,
                       Suppressions& sup, std::vector<Finding>& findings)
{
    const std::string rule = "atomics-discipline";
    const Tokens& toks = scan.tokens;
    const bool inObs = hasPathComponent(path, "obs");

    // Names wrapped by std::atomic_ref anywhere in this file, and the
    // token indices of those wrapped occurrences.
    std::set<std::string> refNames;
    std::set<std::size_t> refUses;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier
            || toks[i].text != "atomic_ref")
            continue;
        std::size_t k = nextTok(toks, i);
        int angle = 0;
        // Skip template arguments and an optional CTAD variable name.
        while (k != std::string::npos) {
            if (isPunct(toks[k], "<"))
                ++angle;
            else if (isPunct(toks[k], ">"))
                --angle;
            else if (angle == 0 && isPunct(toks[k], "("))
                break;
            else if (angle == 0 && isPunct(toks[k], ";"))
                break;
            k = nextTok(toks, k);
        }
        if (k == std::string::npos || !isPunct(toks[k], "("))
            continue;
        std::size_t arg = nextTok(toks, k);
        while (arg != std::string::npos
               && (isPunct(toks[arg], "&") || isPunct(toks[arg], "*")))
            arg = nextTok(toks, arg);
        if (arg != std::string::npos
            && toks[arg].kind == TokenKind::Identifier) {
            refNames.insert(toks[arg].text);
            refUses.insert(arg);
        }
    }

    static const std::set<std::string> mutators = {
        "=",  "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "<<=", ">>=", "++", "--"};

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];

        if (t.kind == TokenKind::Keyword && t.text == "volatile") {
            emit(path, rule, t,
                 "`volatile` is not a synchronization primitive: it "
                 "orders nothing and is not atomic — use std::atomic "
                 "(or a mutex) for cross-thread state",
                 sup, scan, findings);
            continue;
        }

        if (t.kind == TokenKind::Identifier
            && (t.text == "memory_order_relaxed"
                || (t.text == "memory_order"
                    && [&] {
                           const std::size_t a = nextTok(toks, i);
                           const std::size_t b =
                               a == std::string::npos ? a
                                                      : nextTok(toks, a);
                           return a != std::string::npos
                                  && isPunct(toks[a], "::")
                                  && b != std::string::npos
                                  && toks[b].text == "relaxed";
                       }()))) {
            if (!inObs) {
                emit(path, rule, t,
                     "std::memory_order_relaxed outside src/obs: "
                     "relaxed atomics are only audited as sound in the "
                     "telemetry slabs (monotonic counters, no "
                     "inter-thread ordering) — use acquire/release or "
                     "seq_cst, or justify with an allow annotation",
                     sup, scan, findings);
            }
            continue;
        }

        // Plain mutation of a variable elsewhere accessed through
        // std::atomic_ref: the unwrapped access races the wrapped one.
        if (t.kind == TokenKind::Identifier && refNames.count(t.text) > 0
            && refUses.count(i) == 0) {
            const std::size_t p = prevTok(toks, i);
            const std::size_t q = nextTok(toks, i);
            const bool declLike =
                p != std::string::npos
                && (toks[p].kind == TokenKind::Identifier
                    || toks[p].kind == TokenKind::Keyword
                    || isPunct(toks[p], ">") || isPunct(toks[p], "&")
                    || isPunct(toks[p], "*"));
            const bool mutated =
                (q != std::string::npos
                 && toks[q].kind == TokenKind::Punct
                 && mutators.count(toks[q].text) > 0)
                || (p != std::string::npos
                    && (isPunct(toks[p], "++")
                        || isPunct(toks[p], "--")));
            if (!declLike && mutated) {
                emit(path, rule, t,
                     "non-atomic mutation of '" + t.text
                         + "', which is also accessed through "
                           "std::atomic_ref in this file: the plain "
                           "access races the atomic one — go through "
                           "the atomic_ref everywhere",
                     sup, scan, findings);
            }
        }
    }
}

} // namespace bighouse::lint
