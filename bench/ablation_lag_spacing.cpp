/**
 * @file
 * Ablation: is the runs-up-test lag spacing actually necessary?
 *
 * The SQS convergence formulas (Eqs. 2-3) assume independent
 * observations. Successive response times from a queue are autocorrelated
 * (Sec. 2.3), so a naive sampler that keeps every observation computes a
 * confidence interval that is too narrow and *stops too early*.
 *
 * The bench runs K independent replications of an M/M/1 simulation two
 * ways — naive (lag forced to 1) and calibrated (runs-up lag) — and
 * reports the achieved coverage: how often the reported 95% confidence
 * interval contains the true mean 1/(mu - lambda). Calibrated sampling
 * should cover ~95%; naive sampling should undercover badly. The price
 * of calibration (events per run) is printed next to it.
 */

#include <cstdio>
#include <memory>

#include "core/report.hh"
#include "core/sqs.hh"
#include "distribution/basic.hh"
#include "queueing/server.hh"
#include "queueing/source.hh"

using namespace bighouse;

namespace {

struct CoverageResult
{
    int covered = 0;
    int runs = 0;
    double meanLag = 0.0;
    double meanEvents = 0.0;
};

CoverageResult
replicate(bool calibratedLag, int runs, double rho)
{
    const double trueMean = 1.0 / (1.0 - rho);
    CoverageResult out;
    out.runs = runs;
    for (int r = 0; r < runs; ++r) {
        SqsConfig config;
        config.accuracy = 0.05;
        config.quantiles = {};
        config.warmupSamples = 5000;  // heavy traffic needs a long warm-up
        SqsSimulation sim(config,
                          0xAB1A + static_cast<std::uint64_t>(r) * 7919);
        MetricSpec spec = sim.defaultMetricSpec("response_time");
        if (!calibratedLag)
            spec.maxLag = 1;  // naive: keep every observation
        const auto id = sim.addMetric(spec);

        auto server = std::make_shared<Server>(sim.engine(), 1);
        StatsCollection& stats = sim.stats();
        server->setCompletionHandler([&stats, id](const Task& task) {
            stats.record(id, task.responseTime());
        });
        auto source = std::make_shared<Source>(
            sim.engine(), *server, std::make_unique<Exponential>(rho),
            std::make_unique<Exponential>(1.0), sim.rootRng().split());
        source->start();
        sim.holdModel(server);
        sim.holdModel(source);

        const SqsResult result = sim.run();
        const MetricEstimate& est = result.estimates[0];
        if (std::abs(est.mean - trueMean) <= est.meanHalfWidth)
            ++out.covered;
        out.meanLag += static_cast<double>(est.lag);
        out.meanEvents += static_cast<double>(result.events);
    }
    out.meanLag /= runs;
    out.meanEvents /= runs;
    return out;
}

} // namespace

int
main()
{
    constexpr int kRuns = 40;
    std::printf("=== Ablation: runs-up lag spacing vs. naive sampling "
                "===\n");
    std::printf("M/M/1, target 95%% CI at E = 5%%, %d replications per "
                "cell\n\n",
                kRuns);

    TextTable table({"rho", "sampler", "CI coverage %", "target",
                     "mean lag", "mean events/run"});
    for (const double rho : {0.3, 0.5, 0.7}) {
        const CoverageResult naive = replicate(false, kRuns, rho);
        const CoverageResult calibrated = replicate(true, kRuns, rho);
        table.addRow({formatG(rho, 2), "naive (lag = 1)",
                      formatG(100.0 * naive.covered / naive.runs, 3),
                      "95", formatG(naive.meanLag, 3),
                      formatG(naive.meanEvents, 4)});
        table.addRow({formatG(rho, 2), "calibrated (runs-up)",
                      formatG(100.0 * calibrated.covered / calibrated.runs,
                              3),
                      "95", formatG(calibrated.meanLag, 3),
                      formatG(calibrated.meanEvents, 4)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: the naive sampler computes its CI from "
                "correlated observations, so the interval is too narrow "
                "and it stops too early — coverage collapses as load "
                "(and autocorrelation) grows. Calibrated lag spacing "
                "restores most of the nominal coverage at the cost of "
                "roughly l-times more events (Sec. 2.3). The residual "
                "shortfall at high rho is expected: spaced observations "
                "retain some long-range correlation and the sequential "
                "stopping rule biases the width — the paper's own caveat "
                "('this method often increases sample variance, further "
                "increasing n').\n");
    return 0;
}
