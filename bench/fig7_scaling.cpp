/**
 * @file
 * Regenerates paper Fig. 7: simulation time scaling — wall-clock time to
 * convergence vs. the number of simulated servers (10 -> 10,000) for the
 * DNS, Mail, Shell and Web workloads under the power-capping system
 * model of Sec. 4.1.
 *
 * The paper's observation: simulation time grows roughly linearly with
 * cluster size, because the required *sample size* barely changes (it
 * depends on output variance, which averaging across servers even
 * shrinks) while the cost of maintaining the enlarged discrete-event
 * state grows with every added server.
 *
 * The 10,000-server point is run for DNS only, to keep the whole bench
 * suite's runtime sane; the trend is identical for the other workloads.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/library.hh"

using namespace bighouse;

namespace {

SqsResult
runPoint(const char* workloadName, std::size_t servers)
{
    ExperimentSpec spec;
    spec.workload = makeWorkload(workloadName);
    spec.servers = servers;
    spec.coresPerServer = 4;  // "a large cluster populated with quad-core
                              //  servers" (Sec. 4.1)
    spec.recordCappingLevel = true;
    PowerCappingSpec capping;
    // Provision at half of aggregate peak so capping actually engages.
    capping.budgetFraction = 0.5;
    capping.dvfs = DvfsModel(ServerPowerSpec{150.0, 150.0, 5.0}, 0.9, 0.5);
    spec.capping = capping;
    spec.sqs.accuracy = 0.05;  // "95% confidence of E=.05" (Sec. 4.1)
    return Experiment(std::move(spec)).run(7000 + servers);
}

} // namespace

int
main()
{
    std::printf("=== Fig. 7: simulation time scaling ===\n");
    std::printf("wall-clock seconds to convergence vs. cluster size "
                "(power-capped quad-core servers, E = 5%%)\n\n");

    TextTable table({"workload", "servers", "wall (s)", "events",
                     "sim time (s)", "converged"});
    for (const char* workload : {"dns", "mail", "shell", "web"}) {
        for (const std::size_t servers : {10u, 100u, 1000u}) {
            const SqsResult result = runPoint(workload, servers);
            table.addRow({workload, std::to_string(servers),
                          formatG(result.wallSeconds, 4),
                          std::to_string(result.events),
                          formatG(result.simulatedTime, 4),
                          result.converged ? "yes" : "NO"});
        }
    }
    // The head-room point: three orders of magnitude beyond the smallest.
    const SqsResult big = runPoint("dns", 10000);
    table.addRow({"dns", "10000", formatG(big.wallSeconds, 4),
                  std::to_string(big.events),
                  formatG(big.simulatedTime, 4),
                  big.converged ? "yes" : "NO"});
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper: wall time grows roughly "
                "linearly in servers (events scale with cluster size; "
                "required sample size does not), and even the "
                "10,000-server simulation completes in well under the "
                "'hours rather than days' bound.\n");
    return 0;
}
