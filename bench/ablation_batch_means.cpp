/**
 * @file
 * Ablation: lag spacing (the paper's choice) vs. batch means (the classic
 * alternative) for interval estimation over autocorrelated output.
 *
 * Both are fed the *same* M/M/1 response-time streams. Lag spacing keeps
 * every l-th observation and treats the survivors as i.i.d.; batch means
 * averages disjoint windows of b observations and treats the window means
 * as i.i.d. For each method the bench reports achieved 95% CI coverage of
 * the true mean and the effective sample per observation consumed —
 * quantifying what the paper gave up (or not) by choosing lag spacing,
 * whose other virtue is that lag-spaced observations also feed the
 * *histogram* (quantiles), which batch means cannot provide.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "base/math_utils.hh"
#include "core/report.hh"
#include "distribution/basic.hh"
#include "queueing/server.hh"
#include "queueing/source.hh"
#include "sim/engine.hh"
#include "stats/batch_means.hh"
#include "stats/runs_test.hh"

using namespace bighouse;

namespace {

/** Collect one fixed-length stream of M/M/1 response times. */
std::vector<double>
responseStream(double rho, std::size_t count, std::uint64_t seed)
{
    Engine sim;
    Server server(sim, 1);
    std::vector<double> stream;
    stream.reserve(count);
    server.setCompletionHandler([&](const Task& task) {
        if (stream.size() < count)
            stream.push_back(task.responseTime());
        else
            sim.stop();
    });
    Source source(sim, server, std::make_unique<Exponential>(rho),
                  std::make_unique<Exponential>(1.0), Rng(seed));
    source.start();
    while (stream.size() < count)
        sim.run(100000);
    return stream;
}

struct Coverage
{
    int covered = 0;
    int total = 0;
    double meanEffective = 0.0;  ///< effective i.i.d. sample size used
};

} // namespace

int
main()
{
    constexpr double kRho = 0.7;
    constexpr std::size_t kWarmup = 5000;
    constexpr std::size_t kStream = 60000;   // post-warmup observations
    constexpr int kRuns = 40;
    const double trueMean = 1.0 / (1.0 - kRho);
    const double z = normalCritical(0.95);

    std::printf("=== Ablation: lag spacing vs. batch means ===\n");
    std::printf("M/M/1 at rho = %.1f; %d replications of %zu observations "
                "each; 95%% CI for the mean\n\n",
                kRho, kRuns, kStream);

    Coverage lagCoverage, batchCoverage;
    double lagSum = 0.0;
    for (int r = 0; r < kRuns; ++r) {
        const auto full = responseStream(
            kRho, kWarmup + kStream, 0xBA7C + static_cast<std::uint64_t>(r));
        const std::vector<double> stream(full.begin() + kWarmup,
                                         full.end());

        // --- Lag spacing: calibrate l on the first 5000, keep every
        //     l-th of the rest.
        const std::vector<double> calibration(stream.begin(),
                                              stream.begin() + 5000);
        const LagResult lag = findLag(calibration, 64, 0.05, 500);
        lagSum += static_cast<double>(lag.lag);
        std::vector<double> spaced;
        for (std::size_t i = 5000 + lag.lag - 1; i < stream.size();
             i += lag.lag) {
            spaced.push_back(stream[i]);
        }
        const double lagMean = sampleMean(spaced);
        const double lagHalf =
            z * sampleStddev(spaced)
            / std::sqrt(static_cast<double>(spaced.size()));
        lagCoverage.covered += std::abs(lagMean - trueMean) <= lagHalf;
        ++lagCoverage.total;
        lagCoverage.meanEffective += static_cast<double>(spaced.size());

        // --- Batch means over the same post-calibration observations.
        constexpr std::uint64_t kBatch = 500;
        BatchMeans batches(kBatch);
        for (std::size_t i = 5000; i < stream.size(); ++i)
            batches.add(stream[i]);
        const double bmHalf =
            z * batches.stddevOfMeans()
            / std::sqrt(static_cast<double>(batches.batches()));
        batchCoverage.covered +=
            std::abs(batches.mean() - trueMean) <= bmHalf;
        ++batchCoverage.total;
        batchCoverage.meanEffective +=
            static_cast<double>(batches.batches());
    }

    TextTable table({"method", "CI coverage %", "target",
                     "effective samples", "quantiles?"});
    table.addRow({"lag spacing (runs-up)",
                  formatG(100.0 * lagCoverage.covered / lagCoverage.total,
                          3),
                  "95",
                  formatG(lagCoverage.meanEffective / kRuns, 4), "yes"});
    table.addRow({"batch means (b=500)",
                  formatG(100.0 * batchCoverage.covered
                              / batchCoverage.total,
                          3),
                  "95",
                  formatG(batchCoverage.meanEffective / kRuns, 4), "no"});
    std::printf("%s\n", table.toText().c_str());
    std::printf("(mean calibrated lag was %.1f)\n\n", lagSum / kRuns);
    std::printf("Reading: with long batches, batch means yields honest "
                "(often conservative) intervals from fewer effective "
                "samples, while lag spacing preserves per-observation "
                "values — which the SQS histogram needs for quantile "
                "metrics like the 95th-percentile latency BigHouse "
                "reports. That requirement, plus mergeability across "
                "slaves, is why the paper samples by spacing rather than "
                "batching.\n");
    return 0;
}
