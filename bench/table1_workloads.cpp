/**
 * @file
 * Regenerates paper Table 1: the workload models included with BigHouse.
 *
 * For each of the five workloads the bench prints the published
 * inter-arrival and service moments (Avg, sigma, Cv) next to the moments
 * measured by *sampling this repo's synthesized models* — both the
 * analytic two-moment fits and the empirical-histogram materialization —
 * so the reproduction can be checked at a glance.
 */

#include <cstdio>
#include <vector>

#include "base/math_utils.hh"
#include "base/random.hh"
#include "core/report.hh"
#include "workload/library.hh"

using namespace bighouse;

namespace {

struct Sampled
{
    double mean;
    double sigma;
    double cv;
};

Sampled
sampleMoments(const Distribution& dist, Rng& rng, int n = 400000)
{
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (double& x : xs)
        x = dist.sample(rng);
    Sampled out{};
    out.mean = sampleMean(xs);
    out.sigma = sampleStddev(xs);
    out.cv = out.mean > 0 ? out.sigma / out.mean : 0.0;
    return out;
}

std::string
ms(double seconds)
{
    return formatG(seconds * 1e3, 4);
}

} // namespace

int
main()
{
    std::printf("=== Table 1: workload models included with BigHouse ===\n");
    std::printf("(published moments vs. moments sampled from the "
                "synthesized models; times in ms)\n\n");

    Rng rng(0x7AB1E1);
    TextTable table({"workload", "side", "inter avg", "inter sigma",
                     "inter Cv", "svc avg", "svc sigma", "svc Cv"});
    for (const WorkloadStats& stats : table1()) {
        table.addRow({stats.name, "paper", ms(stats.interarrivalMean),
                      ms(stats.interarrivalSigma),
                      formatG(stats.interarrivalCv(), 3),
                      ms(stats.serviceMean), ms(stats.serviceSigma),
                      formatG(stats.serviceCv(), 3)});

        const Workload analytic = makeWorkload(stats);
        const Sampled ia = sampleMoments(*analytic.interarrival, rng);
        const Sampled svc = sampleMoments(*analytic.service, rng);
        table.addRow({stats.name, "model", ms(ia.mean), ms(ia.sigma),
                      formatG(ia.cv, 3), ms(svc.mean), ms(svc.sigma),
                      formatG(svc.cv, 3)});

        const Workload empirical =
            makeEmpiricalWorkload(stats, rng, 400000, 4000);
        const Sampled eia = sampleMoments(*empirical.interarrival, rng);
        const Sampled esvc = sampleMoments(*empirical.service, rng);
        table.addRow({stats.name, "empirical", ms(eia.mean),
                      ms(eia.sigma), formatG(eia.cv, 3), ms(esvc.mean),
                      ms(esvc.sigma), formatG(esvc.cv, 3)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Descriptions:\n");
    for (const WorkloadStats& stats : table1())
        std::printf("  %-7s %s\n", stats.name, stats.description);
    std::printf("\nNote: 'model' rows are exact two-moment fits; "
                "'empirical' rows pass through the histogram "
                "representation, which clips the extreme tail (visible "
                "for shell's Cv = 15).\n");
    return 0;
}
