/**
 * @file
 * Regenerates paper Fig. 2: the sequence of phases in a BigHouse
 * simulation (warm-up -> calibration -> measurement -> convergence).
 *
 * Runs one M/G/1 simulation with an autocorrelated response-time metric
 * and prints each phase transition with the observation and event counts
 * at which it occurred, plus the calibration products (lag spacing l from
 * the runs-up test, histogram bin scheme) and the final estimates.
 */

#include <cstdio>
#include <memory>

#include "core/report.hh"
#include "core/sqs.hh"
#include "distribution/basic.hh"
#include "distribution/fit.hh"
#include "queueing/server.hh"
#include "queueing/source.hh"

using namespace bighouse;

int
main()
{
    std::printf("=== Fig. 2: the sequence of phases in a BigHouse "
                "simulation ===\n\n");

    SqsConfig config;
    config.warmupSamples = 2000;       // Nw (user-specified, Sec. 2.3)
    config.calibrationSamples = 5000;  // the paper's runs-up sample
    config.accuracy = 0.05;
    SqsSimulation sim(config, 2024);
    const auto id = sim.addMetric("response_time");

    // M/G/1 at rho = 0.8 with Cv = 2 service: response times are strongly
    // autocorrelated, so calibration must choose a lag > 1.
    auto server = std::make_shared<Server>(sim.engine(), 1);
    StatsCollection& stats = sim.stats();
    server->setCompletionHandler([&stats, id](const Task& task) {
        stats.record(id, task.responseTime());
    });
    auto source = std::make_shared<Source>(
        sim.engine(), *server, std::make_unique<Exponential>(0.8),
        fitMeanCv(1.0, 2.0), sim.rootRng().split());
    source->start();
    sim.holdModel(server);
    sim.holdModel(source);

    TextTable table({"phase entered", "offered obs", "accepted obs",
                     "events", "sim time (s)"});
    Phase last = Phase::Warmup;
    std::uint64_t events = 0;
    table.addRow({"warmup", "0", "0", "0", "0"});
    while (!stats.allConverged()) {
        const std::uint64_t ran = sim.runBatch(2000);
        events += ran;
        if (ran == 0)
            break;
        const OutputMetric& metric = stats.metric(id);
        // The collection holds warm-up globally; report its view.
        const Phase now = stats.warmedUp() ? metric.phase() : Phase::Warmup;
        if (now != last) {
            table.addRow({phaseName(now),
                          std::to_string(metric.offeredCount()),
                          std::to_string(metric.acceptedCount()),
                          std::to_string(events),
                          formatG(sim.engine().now(), 4)});
            last = now;
        }
    }
    std::printf("%s\n", table.toText().c_str());

    const OutputMetric& metric = stats.metric(id);
    std::printf("calibration products:\n");
    std::printf("  lag spacing l = %zu (runs-up test %s) -> keep every "
                "%zu-th observation\n",
                metric.lag(), metric.lagTestPassed() ? "passed" : "FAILED",
                metric.lag());
    std::printf("  histogram bin scheme: %s\n\n",
                metric.histogram().scheme().serialize().c_str());
    std::printf("%s\n", stats.report().c_str());
    std::printf("Reading: all %llu warm-up observations were discarded; "
                "calibration started from the paper's 5000-observation "
                "buffer (extending it until the runs-up test passed); "
                "measurement then kept every l-th observation until "
                "N >= max(Nm, Nq) = %llu.\n",
                static_cast<unsigned long long>(config.warmupSamples),
                static_cast<unsigned long long>(metric.requiredSamples()));
    return 0;
}
