/**
 * @file
 * Regenerates paper Fig. 9: sensitivity to accuracy and target metrics.
 *
 * The power-capping cluster of Sec. 4.1 is simulated under three output
 * metric sets — Response only, +Waiting, +Capping — at accuracy targets
 * E in {.1, .05, .01}; the bench reports the wall-clock runtime of each
 * combination.
 *
 * The paper's reading: runtime is set by the *slowest-converging* metric
 * (Sec. 2.3 constraint 2). Waiting observations only occur when a task
 * queues, and capping observations only once per epoch, so each added
 * metric stretches the run; tightening E stretches all of them
 * quadratically.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/library.hh"

using namespace bighouse;

namespace {

double
wallSecondsFor(bool waiting, bool capping, double accuracy)
{
    ExperimentSpec spec;
    // 10 power-capped quad-core servers at ~30% utilization, where
    // queuing is infrequent and waiting observations genuinely rare.
    spec.workload = scaledToLoad(makeWorkload("web"), 4, 0.3);
    spec.servers = 10;
    spec.coresPerServer = 4;
    spec.recordWaitingTime = waiting;
    spec.recordCappingLevel = capping;
    PowerCappingSpec cappingSpec;
    cappingSpec.budgetFraction = 0.5;
    cappingSpec.dvfs =
        DvfsModel(ServerPowerSpec{150.0, 150.0, 5.0}, 0.9, 0.5);
    spec.capping = cappingSpec;  // the capping *model* always runs
    spec.sqs.accuracy = accuracy;
    spec.sqs.maxEvents = 400'000'000;  // keep the worst cell bounded
    const SqsResult result =
        Experiment(std::move(spec))
            .run(900 + static_cast<std::uint64_t>(accuracy * 1000));
    if (!result.converged)
        std::printf("  (note: E=%.2g %s did not converge before the "
                    "event ceiling; reported time is a lower bound)\n",
                    accuracy, waiting ? "+Waiting" : "Response");
    return result.wallSeconds;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 9: sensitivity to accuracy and target metrics "
                "===\n");
    std::printf("wall-clock seconds to convergence; power-capped cluster "
                "(10 x 4 cores, web workload at 30%%)\n\n");

    TextTable table({"metric set", "E=.1", "E=.05", "E=.01"});
    const std::vector<std::pair<const char*, std::pair<bool, bool>>>
        sets = {{"Response", {false, false}},
                {"+Waiting", {true, false}},
                {"+Capping", {true, true}}};
    for (const auto& [label, flags] : sets) {
        std::vector<std::string> row{label};
        for (const double accuracy : {0.1, 0.05, 0.01}) {
            row.push_back(formatG(
                wallSecondsFor(flags.first, flags.second, accuracy), 4));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper (log-scale figure): each row "
                "dominates the one above it (waiting observations are "
                "rarer than completions; capping epochs are rarer still), "
                "and every row grows steeply as E tightens.\n");
    return 0;
}
