/**
 * @file
 * Regenerates the *motivation* behind the Sec. 3.2 case study: PowerNap
 * exploits full-system idle periods, but as core counts grow the chance
 * that every core is simultaneously idle collapses — so a plain PowerNap
 * server loses nearly all sleep opportunity, while DreamWeaver's
 * scheduling re-creates it by aligning idle periods (at a bounded latency
 * cost).
 *
 * For core counts 1-32 at fixed 30% per-core utilization, the bench
 * reports the sleep fraction of (a) PowerNap alone and (b) DreamWeaver
 * with a 100 ms delay budget, plus each one's mean latency penalty vs. an
 * always-on server.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "base/math_utils.hh"
#include "core/report.hh"
#include "distribution/fit.hh"
#include "policy/dreamweaver.hh"
#include "policy/powernap.hh"
#include "queueing/source.hh"
#include "sim/engine.hh"
#include "workload/workload.hh"

using namespace bighouse;

namespace {

constexpr double kUtilization = 0.3;
constexpr Time kWakeLatency = 1.0 * kMilliSecond;
constexpr Time kHorizon = 400.0;

Workload
solrLike()
{
    Workload workload;
    workload.name = "solr";
    workload.interarrival = fitMeanCv(0.05, 1.0);
    workload.service = fitMeanCv(0.05, 1.2);
    return workload;
}

struct RunStats
{
    double idleFraction;
    double meanLatencyMs;
};

template <typename ServerT>
RunStats
runWith(ServerT& server, TaskAcceptor& acceptor, Engine& sim,
        unsigned cores, double& idleOut)
{
    std::vector<double> latencies;
    server.setCompletionHandler([&latencies](const Task& task) {
        latencies.push_back(task.responseTime());
    });
    const Workload workload = scaledToLoad(solrLike(), cores, kUtilization);
    Source source(sim, acceptor, workload.interarrival->clone(),
                  workload.service->clone(), Rng(42));
    source.start();
    sim.runUntil(kHorizon);
    idleOut = server.idleFraction();
    return RunStats{server.idleFraction(),
                    sampleMean(latencies) * 1e3};
}

RunStats
powerNapRun(unsigned cores)
{
    Engine sim;
    PowerNapServer server(sim, cores, SleepSpec{kWakeLatency});
    double idle = 0.0;
    return runWith(server, server, sim, cores, idle);
}

RunStats
dreamWeaverRun(unsigned cores)
{
    Engine sim;
    DreamWeaverSpec spec;
    spec.delayBudget = 100.0 * kMilliSecond;
    spec.sleep.wakeLatency = kWakeLatency;
    DreamWeaverServer server(sim, cores, spec);
    double idle = 0.0;
    return runWith(server, server, sim, cores, idle);
}

double
baselineLatencyMs(unsigned cores)
{
    Engine sim;
    Server server(sim, cores);
    std::vector<double> latencies;
    server.setCompletionHandler([&latencies](const Task& task) {
        latencies.push_back(task.responseTime());
    });
    const Workload workload = scaledToLoad(solrLike(), cores, kUtilization);
    Source source(sim, server, workload.interarrival->clone(),
                  workload.service->clone(), Rng(42));
    source.start();
    sim.runUntil(kHorizon);
    return sampleMean(latencies) * 1e3;
}

} // namespace

int
main()
{
    std::printf("=== Motivation for scheduling-for-idleness (Sec. 3.2) "
                "===\n");
    std::printf("fixed %.0f%% per-core utilization; sleep fraction and "
                "mean latency vs. core count\n\n",
                100.0 * kUtilization);

    TextTable table({"cores", "always-on lat (ms)", "PowerNap sleep",
                     "PowerNap lat (ms)", "DreamWeaver sleep",
                     "DreamWeaver lat (ms)"});
    for (const unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const double base = baselineLatencyMs(cores);
        const RunStats nap = powerNapRun(cores);
        const RunStats dw = dreamWeaverRun(cores);
        table.addRow({std::to_string(cores), formatG(base, 4),
                      formatG(nap.idleFraction, 3),
                      formatG(nap.meanLatencyMs, 4),
                      formatG(dw.idleFraction, 3),
                      formatG(dw.meanLatencyMs, 4)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: PowerNap's sleep fraction collapses toward zero "
                "as cores grow (full-system idleness becomes "
                "combinatorially rare at fixed utilization), while "
                "DreamWeaver holds sleep near (1 - utilization) by "
                "coalescing idle periods — paying a bounded latency "
                "increase. This is exactly why the Sec. 3.2 mechanism "
                "exists.\n");
    return 0;
}
