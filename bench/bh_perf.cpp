/**
 * @file
 * bh_perf: the repo's reproducible performance baseline.
 *
 * Runs fixed-seed scenarios covering the DES hot path end to end —
 * event-queue churn, full-engine M/M/k dispatch, the per-observation
 * statistics chain, and a Fig. 7-style power-capped cluster — and emits
 * machine-readable JSON (`BENCH_*.json`, schema `bighouse-bench-v1`)
 * with events/sec, observations/sec and ns/event per scenario. Every
 * future PR is measured against the committed baseline; see
 * docs/performance.md and scripts/check_perf.sh.
 *
 * Unlike the google-benchmark micro_* binaries (interactive exploration,
 * auto-tuned iteration counts), bh_perf runs a *fixed* amount of work
 * under a fixed seed, so two runs execute the bit-identical event
 * sequence and differ only in wall-clock. Each scenario also reports a
 * deterministic checksum so a perf regression can be distinguished from
 * a semantics change at a glance.
 *
 *   bh_perf [--quick] [--out PATH] [--scenario NAME ...]
 *
 * --quick shrinks the workloads for CI smoke runs (same scenarios, same
 * seeds, ~1s total); --scenario limits the run to the named scenarios.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/build_info.hh"
#include "base/random.hh"
#include "config/json.hh"
#include "core/experiment.hh"
#include "distribution/basic.hh"
#include "distribution/fit.hh"
#include "obs/timeline.hh"
#include "queueing/server.hh"
#include "queueing/source.hh"
#include "sim/engine.hh"
#include "sim/event_queue.hh"
#include "sim/recurrence_backend.hh"
#include "stats/collection.hh"
#include "stats/metric.hh"
#include "workload/library.hh"

using namespace bighouse;

namespace {

/** Wall-clock stopwatch (host measurement, not simulated time). */
class Stopwatch
{
  public:
    Stopwatch() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

struct ScenarioResult
{
    std::string name;
    std::uint64_t units = 0;     ///< events or observations processed
    std::string unitName;        ///< "events" | "observations" | "tasks"
    double wallSeconds = 0.0;
    double checksum = 0.0;       ///< deterministic workload fingerprint
    JsonValue::Object extra;     ///< scenario-specific fields
};

/** events/sec (or observations/sec) with divide-by-zero guarded. */
double
ratePerSec(std::uint64_t units, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(units) / seconds : 0.0;
}

double
nsPerUnit(std::uint64_t units, double seconds)
{
    return units > 0 ? seconds * 1e9 / static_cast<double>(units) : 0.0;
}

/**
 * Event-queue churn at steady depth 16384 plus a cancel-heavy phase —
 * the micro_event_queue scenarios, fixed-length. Runs once per queue
 * backend; the checksum must agree across them (scripts/check_perf.sh
 * enforces it).
 */
ScenarioResult
runMicroEventQueueOn(bool quick, QueueBackend backend)
{
    const std::uint64_t churn = quick ? 300000 : 4000000;
    const std::uint64_t cancelChurn = churn / 2;
    ScenarioResult result;
    result.name = backend == QueueBackend::Calendar
                      ? "micro_event_queue"
                      : "micro_event_queue_heap";
    result.unitName = "events";

    EventQueue queue(backend);
    Rng rng(1);
    double clock = 0.0;
    double checksum = 0.0;
    for (std::size_t i = 0; i < 16384; ++i)
        queue.push(clock + rng.uniform(0.0, 100.0), [] {});

    const Stopwatch watch;
    for (std::uint64_t i = 0; i < churn; ++i) {
        auto popped = queue.pop();
        clock = popped.time;
        checksum += popped.time;
        queue.push(clock + rng.uniform(0.0, 100.0), [] {});
    }
    // Cancel-heavy mix: push+cancel+pop+push per iteration (DVFS shape).
    for (std::uint64_t i = 0; i < cancelChurn; ++i) {
        const EventId id =
            queue.push(clock + rng.uniform(0.0, 10.0), [] {});
        queue.cancel(id);
        auto popped = queue.pop();
        clock = popped.time;
        checksum += popped.time;
        queue.push(clock + rng.uniform(0.0, 10.0), [] {});
    }
    result.wallSeconds = watch.seconds();
    result.units = churn + cancelChurn;
    result.checksum = checksum;
    result.extra["steady_depth"] = JsonValue(16384);
    result.extra["backend"] = JsonValue(queueBackendName(backend));
    return result;
}

ScenarioResult
runMicroEventQueue(bool quick)
{
    return runMicroEventQueueOn(quick, QueueBackend::Calendar);
}

ScenarioResult
runMicroEventQueueHeap(bool quick)
{
    return runMicroEventQueueOn(quick, QueueBackend::BinaryHeap);
}

/**
 * Full-engine M/M/4 station at 70% utilization (micro_engine's BM_Mmk),
 * once per queue backend; checksums must agree across backends.
 */
// The micro_engine / micro_timeline pair feeds a ratio gate (timeline
// overhead <= 5%), so a single timing sample is not good enough:
// scheduler jitter on a ~0.2 s run is itself several percent. Both
// scenarios run kEngineReps fresh replays of the identical fixed-seed
// workload and report the *fastest* — the standard minimum-of-N
// estimator for the noise-free cost.
constexpr int kEngineReps = 5;

ScenarioResult
runMicroEngineOn(bool quick, QueueBackend backend)
{
    const std::uint64_t target = quick ? 200000 : 4000000;
    ScenarioResult result;
    result.name = backend == QueueBackend::Calendar ? "micro_engine"
                                                    : "micro_engine_heap";
    result.unitName = "events";

    result.wallSeconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kEngineReps; ++rep) {
        Engine sim(backend);
        Server server(sim, 4);
        Source source(sim, server, std::make_unique<Exponential>(0.7 * 4),
                      std::make_unique<Exponential>(1.0), Rng(1));
        source.start();

        const Stopwatch watch;
        std::uint64_t events = 0;
        while (events < target)
            events += sim.run(target - events);
        result.wallSeconds = std::min(result.wallSeconds, watch.seconds());
        result.units = events;
        result.checksum = sim.now();
    }
    result.extra["cores"] = JsonValue(4);
    result.extra["backend"] = JsonValue(queueBackendName(backend));
    result.extra["reps"] = JsonValue(kEngineReps);
    return result;
}

ScenarioResult
runMicroEngine(bool quick)
{
    return runMicroEngineOn(quick, QueueBackend::Calendar);
}

/**
 * micro_engine with the timeline probes live: the identical fixed-seed
 * M/M/4 workload with a Timeline collecting queue-depth / busy-core /
 * availability gauges from the server state probe. The checksum must
 * equal micro_engine's exactly (probes draw no RNG and schedule no
 * events), and check_perf.sh gates the ns/event overhead against the
 * uninstrumented twin.
 */
ScenarioResult
runMicroTimeline(bool quick)
{
    const std::uint64_t target = quick ? 200000 : 4000000;
    ScenarioResult result;
    result.name = "micro_timeline";
    result.unitName = "events";

    // The overhead ratio needs a *paired* measurement: bare and
    // instrumented replays alternate within this one scenario so both
    // minimums sample the same few seconds of host frequency / steal
    // time. Comparing against the separately-run micro_engine number
    // would fold minutes of drift into a single-digit-percent gate.
    result.wallSeconds = std::numeric_limits<double>::infinity();
    double bareSeconds = std::numeric_limits<double>::infinity();
    std::uint64_t windows = 0;
    double tracks = 0.0;
    for (int rep = 0; rep < kEngineReps; ++rep) {
        {
            Engine sim(QueueBackend::Calendar);
            Server server(sim, 4);
            Source source(sim, server,
                          std::make_unique<Exponential>(0.7 * 4),
                          std::make_unique<Exponential>(1.0), Rng(1));
            source.start();
            const Stopwatch watch;
            std::uint64_t events = 0;
            while (events < target)
                events += sim.run(target - events);
            bareSeconds = std::min(bareSeconds, watch.seconds());
        }

        TimelineSpec tlSpec;
        // ~2.8 tasks/simulated-second: 1000 s windows keep the harvest
        // a few dozen windows in full mode without tripping the
        // maxWindows valve.
        tlSpec.window = 1000.0;
        Timeline timeline(tlSpec);
        timeline.registerServers(1);

        Engine sim(QueueBackend::Calendar);
        Server server(sim, 4);
        server.setStateProbe(&Timeline::serverProbe, &timeline, 0);
        Source source(sim, server, std::make_unique<Exponential>(0.7 * 4),
                      std::make_unique<Exponential>(1.0), Rng(1));
        source.start();

        const Stopwatch watch;
        std::uint64_t events = 0;
        while (events < target)
            events += sim.run(target - events);
        result.wallSeconds = std::min(result.wallSeconds, watch.seconds());
        result.units = events;
        result.checksum = sim.now();
        const TimelineData data = timeline.harvest(sim.now());
        tracks = static_cast<double>(data.tracks.size());
        for (const TimelineTrackData& track : data.tracks)
            windows =
                std::max<std::uint64_t>(windows, track.windows.size());
    }
    result.extra["bare_ns_per_event"] =
        JsonValue(bareSeconds * 1e9 / static_cast<double>(target));
    result.extra["cores"] = JsonValue(4);
    result.extra["backend"] =
        JsonValue(queueBackendName(QueueBackend::Calendar));
    result.extra["tracks"] = JsonValue(tracks);
    result.extra["windows"] = JsonValue(static_cast<double>(windows));
    result.extra["reps"] = JsonValue(kEngineReps);
    return result;
}

ScenarioResult
runMicroEngineHeap(bool quick)
{
    return runMicroEngineOn(quick, QueueBackend::BinaryHeap);
}

/**
 * The per-observation statistics chain in steady state: warmed-up,
 * calibrated metric absorbing exponential samples (micro_stats's
 * BM_MetricRecordMeasurement, fixed-length).
 */
ScenarioResult
runMicroStats(bool quick)
{
    const std::uint64_t observations = quick ? 2000000 : 40000000;
    ScenarioResult result;
    result.name = "micro_stats";
    result.unitName = "observations";

    MetricSpec spec;
    spec.name = "bench";
    spec.warmupSamples = 0;
    spec.calibrationSamples = 5000;
    spec.target = ConfidenceSpec{1e-9, 0.95};  // never converges
    OutputMetric metric(spec);
    Rng rng(2);
    for (int i = 0; i < 5000; ++i)
        metric.record(rng.exponential(1.0));

    const Stopwatch watch;
    for (std::uint64_t i = 0; i < observations; ++i)
        metric.record(rng.exponential(1.0));
    result.wallSeconds = watch.seconds();
    result.units = observations;
    result.checksum = metric.sampleAccumulator().mean();
    result.extra["accepted"] =
        JsonValue(static_cast<double>(metric.acceptedCount()));
    return result;
}

/**
 * Fig. 7 point: a power-capped quad-core cluster run to convergence
 * (DNS workload) — the end-to-end shape every layer contributes to.
 */
ScenarioResult
runFig7Scaling(bool quick)
{
    const std::size_t servers = quick ? 20 : 100;
    ScenarioResult result;
    result.name = "fig7_scaling";
    result.unitName = "events";

    ExperimentSpec spec;
    spec.workload = makeWorkload("dns");
    spec.servers = servers;
    spec.coresPerServer = 4;
    spec.recordCappingLevel = true;
    PowerCappingSpec capping;
    capping.budgetFraction = 0.5;
    capping.dvfs = DvfsModel(ServerPowerSpec{150.0, 150.0, 5.0}, 0.9, 0.5);
    spec.capping = capping;
    spec.sqs.accuracy = 0.05;

    const Stopwatch watch;
    const SqsResult run = Experiment(std::move(spec))
                              .run(7000 + static_cast<std::uint64_t>(servers));
    result.wallSeconds = watch.seconds();
    result.units = run.events;
    result.checksum = run.simulatedTime;
    result.extra["servers"] = JsonValue(static_cast<double>(servers));
    result.extra["converged"] = JsonValue(run.converged);
    return result;
}

/**
 * Raw RecurrenceBackend throughput: one M/M/4 station at 70% utilization
 * streaming pre-sampled blocks through the bulk statistics path — the
 * per-task cost floor of the vectorized backend (compare ns/task against
 * micro_engine's ns/event for the same model under event dispatch).
 */
ScenarioResult
runMicroRecurrence(bool quick)
{
    const std::uint64_t tasks = quick ? 2000000 : 40000000;
    ScenarioResult result;
    result.name = "micro_recurrence";
    result.unitName = "tasks";

    StatsCollection stats;
    MetricSpec spec;
    spec.name = "bench";
    spec.warmupSamples = 0;
    spec.calibrationSamples = 5000;
    spec.target = ConfidenceSpec{1e-9, 0.95};  // never converges
    const auto id = stats.addMetric(spec);
    RecurrenceBackend backend(stats);
    RecurrenceStationSpec station;
    station.interarrival = std::make_unique<Exponential>(0.7 * 4);
    station.service = std::make_unique<Exponential>(1.0);
    station.rng = Rng(1);
    station.cores = 4;
    backend.addStation(std::move(station));
    backend.recordResponseTime(id);

    const Stopwatch watch;
    backend.step(tasks);
    result.wallSeconds = watch.seconds();
    result.units = tasks;
    result.checksum = backend.now();
    result.extra["cores"] = JsonValue(4);
    result.extra["accepted"] = JsonValue(
        static_cast<double>(stats.metric(id).acceptedCount()));
    return result;
}

/**
 * The recurrence-eligible scaling twins: the Fig. 7 scaling axis (big
 * FCFS cluster, one source per server) with the workload reduced to its
 * exponential-moment equivalent (M/M/1 stations at 90% utilization) so
 * both backends draw through the same devirtualized sampling fast path
 * and the ratio isolates the engines rather than the distributions.
 * Both twins run the same fixed event budget (accuracy is set far below
 * reach so the maxEvents valve is the stop, making wall time long enough
 * to measure and identical in work across runs). Units are completed
 * tasks (the response-time metric's offered count) so the twin ns/task
 * columns compare like for like; check_perf.sh gates the recurrence twin
 * at >= 10x the DES twin. Checksums are per-twin only: the two backends
 * stop at different simulated instants (the budget counts engine events
 * for the DES but tasks for the recurrence), so cross-twin checksum
 * equality is NOT expected — the distributional referee lives in
 * tests/test_recurrence.cc.
 */
ScenarioResult
runFig7ScalingTwin(bool quick, SimBackend backend)
{
    const std::size_t servers = 1000;
    const std::uint64_t budget = quick ? 4000000 : 16000000;
    ScenarioResult result;
    result.name = backend == SimBackend::Des ? "fig7_scaling_fcfs"
                                             : "fig7_scaling_recurrence";
    result.unitName = "tasks";

    ExperimentSpec spec;
    spec.workload.name = "expo90";
    spec.workload.interarrival = fitMeanCv(1.0 / 0.9, 1.0);
    spec.workload.service = fitMeanCv(1.0, 1.0);
    spec.servers = servers;
    spec.coresPerServer = 1;
    spec.simBackend = backend;
    spec.sqs.accuracy = 1e-6;  // unreachable: the valve fixes the work
    spec.sqs.maxEvents = budget;
    spec.sqs.batchEvents = 500000;

    const Stopwatch watch;
    const SqsResult run = Experiment(std::move(spec))
                              .run(7100 + static_cast<std::uint64_t>(servers));
    result.wallSeconds = watch.seconds();
    result.units = run.estimates[0].offered;
    result.checksum = run.simulatedTime;
    result.extra["servers"] = JsonValue(static_cast<double>(servers));
    result.extra["converged"] = JsonValue(run.converged);
    result.extra["backend"] =
        JsonValue(std::string(simBackendName(run.backend)));
    result.extra["engine_units"] =
        JsonValue(static_cast<double>(run.events));
    return result;
}

ScenarioResult
runFig7ScalingFcfs(bool quick)
{
    return runFig7ScalingTwin(quick, SimBackend::Des);
}

ScenarioResult
runFig7ScalingRecurrence(bool quick)
{
    return runFig7ScalingTwin(quick, SimBackend::Recurrence);
}

JsonValue
toJson(const ScenarioResult& result)
{
    JsonValue::Object obj;
    obj["name"] = JsonValue(result.name);
    obj[result.unitName] =
        JsonValue(static_cast<double>(result.units));
    obj["wall_seconds"] = JsonValue(result.wallSeconds);
    obj[result.unitName + "_per_sec"] =
        JsonValue(ratePerSec(result.units, result.wallSeconds));
    // "events" -> ns_per_event, "observations" -> ns_per_observation,
    // "tasks" -> ns_per_task.
    obj["ns_per_"
        + result.unitName.substr(0, result.unitName.size() - 1)] =
        JsonValue(nsPerUnit(result.units, result.wallSeconds));
    obj["checksum"] = JsonValue(result.checksum);
    for (const auto& [key, value] : result.extra)
        obj[key] = value;
    return JsonValue(std::move(obj));
}

void
printUsage()
{
    std::printf(
        "usage: bh_perf [--quick] [--out PATH] [--scenario NAME ...]\n"
        "scenarios: micro_event_queue micro_event_queue_heap "
        "micro_engine micro_engine_heap micro_timeline micro_stats "
        "micro_recurrence fig7_scaling fig7_scaling_fcfs "
        "fig7_scaling_recurrence\n");
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string outPath = "BENCH_6.json";
    std::vector<std::string> selected;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--scenario" && i + 1 < argc) {
            selected.push_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            // bh-lint: allow(raw-stderr) CLI front-end, not library code
            std::fprintf(stderr, "bh_perf: unknown argument '%s'\n",
                         arg.c_str());
            printUsage();
            return 2;
        }
    }

    struct Scenario
    {
        const char* name;
        ScenarioResult (*run)(bool quick);
    };
    // The *_heap twins re-run the same fixed workload on the reference
    // binary-heap backend: check_perf.sh asserts their checksums match
    // the calendar scenarios exactly (semantic equivalence), while the
    // timing columns show the backends' relative cost.
    const Scenario scenarios[] = {
        {"micro_event_queue", runMicroEventQueue},
        {"micro_event_queue_heap", runMicroEventQueueHeap},
        {"micro_engine", runMicroEngine},
        {"micro_engine_heap", runMicroEngineHeap},
        {"micro_timeline", runMicroTimeline},
        {"micro_stats", runMicroStats},
        {"micro_recurrence", runMicroRecurrence},
        {"fig7_scaling", runFig7Scaling},
        {"fig7_scaling_fcfs", runFig7ScalingFcfs},
        {"fig7_scaling_recurrence", runFig7ScalingRecurrence},
    };

    const auto wants = [&selected](const char* name) {
        if (selected.empty())
            return true;
        for (const std::string& s : selected) {
            if (s == name)
                return true;
        }
        return false;
    };

    JsonValue::Array results;
    std::printf("%-22s %14s %10s %14s %12s\n", "scenario", "units",
                "wall (s)", "units/sec", "ns/unit");
    bool ranAny = false;
    for (const Scenario& scenario : scenarios) {
        if (!wants(scenario.name))
            continue;
        ranAny = true;
        const ScenarioResult result = scenario.run(quick);
        std::printf("%-22s %14llu %10.3f %14.0f %12.1f\n",
                    result.name.c_str(),
                    static_cast<unsigned long long>(result.units),
                    result.wallSeconds,
                    ratePerSec(result.units, result.wallSeconds),
                    nsPerUnit(result.units, result.wallSeconds));
        results.push_back(toJson(result));
    }
    if (!ranAny) {
        // bh-lint: allow(raw-stderr) CLI front-end, not library code
        std::fprintf(stderr, "bh_perf: no scenario matched\n");
        return 2;
    }

    JsonValue::Object doc;
    doc["schema"] = JsonValue("bighouse-bench-v1");
    doc["quick"] = JsonValue(quick);
    // Same key set as the telemetry document's "build" object, so every
    // provenance surface agrees byte for byte.
    const BuildInfo& build = buildInfo();
    JsonValue::Object buildObj;
    buildObj["compiler"] = JsonValue(build.compiler);
    buildObj["flags"] = JsonValue(build.flags);
    buildObj["gitDescribe"] = JsonValue(build.gitDescribe);
    buildObj["sanitizer"] = JsonValue(build.sanitizer);
    buildObj["type"] = JsonValue(build.buildType);
    doc["build"] = JsonValue(std::move(buildObj));
    doc["scenarios"] = JsonValue(std::move(results));

    std::ofstream out(outPath);
    if (!out) {
        // bh-lint: allow(raw-stderr) CLI front-end, not library code
        std::fprintf(stderr, "bh_perf: cannot write '%s'\n",
                     outPath.c_str());
        return 1;
    }
    out << JsonValue(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
