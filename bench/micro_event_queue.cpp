/**
 * @file
 * Microbenchmarks (google-benchmark) for the event queue — the hot path
 * of the DES kernel; Fig. 7's linear scaling rests on these costs staying
 * near-constant as the pending set grows.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "sim/event_queue.hh"

namespace {

using bighouse::EventQueue;
using bighouse::Rng;

void
BM_PushPopRandom(benchmark::State& state)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    EventQueue queue;
    double clock = 0.0;
    for (std::size_t i = 0; i < depth; ++i)
        queue.push(clock + rng.uniform(0.0, 100.0), [] {});
    for (auto _ : state) {
        auto popped = queue.pop();
        clock = popped.time;
        benchmark::DoNotOptimize(popped.callback);
        queue.push(clock + rng.uniform(0.0, 100.0), [] {});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushPopRandom)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void
BM_PushPopFifoTies(benchmark::State& state)
{
    // Same-timestamp storm: exercises the sequence tie-break.
    EventQueue queue;
    for (int i = 0; i < 1024; ++i)
        queue.push(1.0, [] {});
    for (auto _ : state) {
        auto popped = queue.pop();
        benchmark::DoNotOptimize(popped.time);
        queue.push(1.0, [] {});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushPopFifoTies);

void
BM_CancelHeavy(benchmark::State& state)
{
    // The DVFS/sleep paths cancel completions constantly; measure a
    // push+cancel+pop mix.
    Rng rng(2);
    EventQueue queue;
    double clock = 0.0;
    for (int i = 0; i < 4096; ++i)
        queue.push(clock + rng.uniform(0.0, 10.0), [] {});
    for (auto _ : state) {
        const bighouse::EventId id =
            queue.push(clock + rng.uniform(0.0, 10.0), [] {});
        queue.cancel(id);
        auto popped = queue.pop();
        clock = popped.time;
        queue.push(clock + rng.uniform(0.0, 10.0), [] {});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelHeavy);

} // namespace

BENCHMARK_MAIN();
