/**
 * @file
 * Regenerates paper Fig. 6: validation of scheduling for idleness
 * (DreamWeaver). Fraction of time the entire server is idle (deep sleep)
 * vs. 99th-percentile query latency, both swept via the per-task delay
 * threshold.
 *
 * The paper validated against a Solr/Wikipedia/AOL software prototype
 * ("Prototype" points) next to BigHouse estimates ("Simulation"); the
 * prototype hardware is unavailable, so this bench regenerates the
 * simulation series with a Solr-like stand-in workload (50 ms mean,
 * Cv = 1.2 service; see DESIGN.md substitution #1).
 */

#include <cstdio>
#include <memory>

#include "core/report.hh"
#include "core/sqs.hh"
#include "distribution/fit.hh"
#include "policy/dreamweaver.hh"
#include "queueing/source.hh"
#include "workload/workload.hh"

using namespace bighouse;

namespace {

Workload
makeSolrWorkload()
{
    Workload workload;
    workload.name = "solr";
    workload.interarrival = fitMeanCv(0.05, 1.0);
    workload.service = fitMeanCv(0.05, 1.2);
    return workload;
}

} // namespace

int
main()
{
    constexpr unsigned kCores = 16;
    constexpr double kUtilization = 0.3;

    std::printf("=== Fig. 6: validation of scheduling for idleness "
                "(DreamWeaver) ===\n");
    std::printf("idle fraction vs. p99 latency, sweeping the max per-task "
                "delay threshold\n(%u cores, Solr-like workload at %.0f%% "
                "utilization, 1 ms wake latency)\n\n",
                kCores, 100.0 * kUtilization);

    TextTable table({"threshold (ms)", "p99 latency (ms)",
                     "idle fraction", "naps/s"});
    for (const double thresholdMs :
         {5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0}) {
        SqsConfig config;
        config.accuracy = 0.05;
        config.quantiles = {0.99};
        SqsSimulation sim(config, 6006);
        const auto id = sim.addMetric("response_time");

        DreamWeaverSpec dwSpec;
        dwSpec.delayBudget = thresholdMs * kMilliSecond;
        dwSpec.sleep.wakeLatency = 1.0 * kMilliSecond;
        auto server = std::make_shared<DreamWeaverServer>(sim.engine(),
                                                          kCores, dwSpec);
        StatsCollection& stats = sim.stats();
        server->setCompletionHandler([&stats, id](const Task& task) {
            stats.record(id, task.responseTime());
        });
        const Workload workload =
            scaledToLoad(makeSolrWorkload(), kCores, kUtilization);
        auto source = std::make_shared<Source>(
            sim.engine(), *server, workload.interarrival->clone(),
            workload.service->clone(), sim.rootRng().split());
        source->start();
        sim.holdModel(server);
        sim.holdModel(source);

        const SqsResult result = sim.run();
        table.addRow(
            {formatG(thresholdMs, 4),
             formatG(result.estimates[0].quantiles[0].value * 1e3, 4),
             formatG(server->idleFraction(), 3),
             formatG(static_cast<double>(server->napCount())
                         / result.simulatedTime,
                     3)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper: a rising, concave trade-off "
                "— the scheduler converts bounded per-request delay into "
                "whole-server sleep; small thresholds buy little idleness, "
                "large ones saturate toward (1 - utilization).\n");
    return 0;
}
