/**
 * @file
 * Microbenchmarks (google-benchmark) for the statistics package: per-
 * observation cost of the metric pipeline (the price of statistical
 * termination), histogram insertion, and the runs-up calibration test.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "base/random.hh"
#include "stats/histogram.hh"
#include "stats/metric.hh"
#include "stats/runs_test.hh"

namespace {

using namespace bighouse;

void
BM_HistogramAdd(benchmark::State& state)
{
    Histogram hist(BinScheme{0.0, 100.0,
                             static_cast<std::size_t>(state.range(0))});
    Rng rng(1);
    for (auto _ : state)
        hist.add(rng.uniform(0.0, 100.0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_MetricRecordMeasurement(benchmark::State& state)
{
    MetricSpec spec;
    spec.name = "bench";
    spec.warmupSamples = 0;
    spec.calibrationSamples = 5000;
    spec.target = ConfidenceSpec{1e-9, 0.95};  // never converges
    OutputMetric metric(spec);
    Rng rng(2);
    // Push through calibration so the loop measures steady-state cost.
    for (int i = 0; i < 5000; ++i)
        metric.record(rng.exponential(1.0));
    for (auto _ : state)
        metric.record(rng.exponential(1.0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricRecordMeasurement);

void
BM_RunsUpStatistic(benchmark::State& state)
{
    Rng rng(3);
    std::vector<double> xs(5000);
    for (double& x : xs)
        x = rng.uniform01();
    for (auto _ : state)
        benchmark::DoNotOptimize(runsUpStatistic(xs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunsUpStatistic);

void
BM_LagSearchAutocorrelated(benchmark::State& state)
{
    // The full calibration cost on a stubbornly correlated stream.
    Rng rng(4);
    std::vector<double> xs(5000);
    double previous = 0.0;
    for (double& x : xs) {
        previous = 0.9 * previous + 0.1 * rng.exponential(1.0);
        x = previous;
    }
    for (auto _ : state) {
        const LagResult result = findLag(xs);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LagSearchAutocorrelated);

} // namespace

BENCHMARK_MAIN();
