/**
 * @file
 * Regenerates paper Fig. 8: sensitivity to workload distribution
 * variance. A server's service distribution is adjusted to a target
 * coefficient of variation Cv in {1, 2, 4}; response time is the sole
 * output metric; the bench reports the number of simulated events needed
 * to reach each accuracy target E.
 *
 * Eqs. 2-3 predict the shape: required samples grow quadratically in
 * 1/E and in the response-time Cv (which the service Cv drives), so the
 * curves stay close at loose E and fan out dramatically at E = .05 and
 * below — exactly the paper's "disproportionate increase".
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/report.hh"
#include "core/sqs.hh"
#include "distribution/basic.hh"
#include "distribution/fit.hh"
#include "queueing/server.hh"
#include "queueing/source.hh"

using namespace bighouse;

namespace {

std::uint64_t
eventsToConverge(double serviceCv, double accuracy)
{
    SqsConfig config;
    config.accuracy = accuracy;
    config.quantiles = {};  // response time mean only, like the paper
    config.batchEvents = 5000;
    SqsSimulation sim(config, 800 + static_cast<std::uint64_t>(
                                        serviceCv * 10 + accuracy * 1000));
    const auto id = sim.addMetric("response_time");
    auto server = std::make_shared<Server>(sim.engine(), 4);
    StatsCollection& stats = sim.stats();
    server->setCompletionHandler([&stats, id](const Task& task) {
        stats.record(id, task.responseTime());
    });
    // Four-core server at 60% utilization; unit-mean service with the
    // requested Cv.
    auto source = std::make_shared<Source>(
        sim.engine(), *server, std::make_unique<Exponential>(2.4),
        fitMeanCv(1.0, serviceCv), sim.rootRng().split());
    source->start();
    sim.holdModel(server);
    sim.holdModel(source);
    return sim.run().events;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 8: sensitivity to workload distribution "
                "variance ===\n");
    std::printf("simulated events needed to reach accuracy E, per service "
                "Cv (response time metric only)\n\n");

    const std::vector<double> cvs = {1.0, 2.0, 4.0};
    TextTable table({"target E", "Cv=1", "Cv=2", "Cv=4",
                     "Cv=4 / Cv=1"});
    for (const double accuracy : {0.20, 0.10, 0.05, 0.02}) {
        std::vector<std::uint64_t> events;
        for (const double cv : cvs)
            events.push_back(eventsToConverge(cv, accuracy));
        table.addRow({formatG(accuracy, 3), std::to_string(events[0]),
                      std::to_string(events[1]),
                      std::to_string(events[2]),
                      formatG(static_cast<double>(events[2])
                                  / static_cast<double>(events[0]),
                              3)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper: at loose targets the three "
                "Cv curves need similar event counts; tightening E makes "
                "the high-Cv runs disproportionately longer (Eq. 2: "
                "quadratic in both Cv and 1/E).\n");
    return 0;
}
