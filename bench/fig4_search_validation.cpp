/**
 * @file
 * Regenerates paper Fig. 4: 95th-percentile latency of a Google Web
 * Search leaf node vs. load (% of peak QPS), one line per CPU performance
 * setting SCPU in {1.0, 1.1, 1.3, 1.6, 2.0}.
 *
 * The paper plots BigHouse predictions (lines) against production
 * hardware measurements (points, unavailable here); this bench
 * regenerates the lines. The workload is the Table-1 Google model; SCPU
 * stretches service times directly, as in the [24] characterization.
 * Combinations where the slowed-down server would saturate
 * (SCPU * load >= 0.95) are skipped, as they fall outside the figure's
 * operating range.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/library.hh"

using namespace bighouse;

int
main()
{
    constexpr unsigned kCores = 4;
    const std::vector<double> scpuSettings = {1.0, 1.1, 1.3, 1.6, 2.0};
    const std::vector<double> qpsPercents = {20, 30, 40, 50, 60, 70};

    std::printf("=== Fig. 4: Google Web search performance scaling ===\n");
    std::printf("95th-percentile latency (ms) vs. QPS (%% of max), one "
                "column per SCPU\n(4-core leaf, Table-1 google workload, "
                "95%% confidence, E = 5%%)\n\n");

    TextTable table({"QPS %", "SCPU=1.0", "SCPU=1.1", "SCPU=1.3",
                     "SCPU=1.6", "SCPU=2.0"});
    for (const double qps : qpsPercents) {
        std::vector<std::string> row{formatG(qps, 3)};
        for (const double scpu : scpuSettings) {
            const double effectiveLoad = scpu * qps / 100.0;
            if (effectiveLoad >= 0.95) {
                row.push_back("(saturated)");
                continue;
            }
            ExperimentSpec spec;
            spec.workload =
                scaledToLoad(makeWorkload("google"), kCores, qps / 100.0);
            spec.coresPerServer = kCores;
            spec.cpuSlowdown = scpu;
            spec.sqs.accuracy = 0.05;
            const SqsResult result =
                Experiment(std::move(spec))
                    .run(4000 + static_cast<std::uint64_t>(qps));
            row.push_back(
                formatG(result.estimates[0].quantiles[0].value * 1e3, 4));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper: p95 rises with QPS; higher "
                "SCPU shifts every curve up and steepens the knee "
                "(paper range ~10-30 ms over QPS 20-70%%; validation "
                "error vs. hardware was 9.2%%).\n");
    return 0;
}
