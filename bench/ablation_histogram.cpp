/**
 * @file
 * Ablation: histogram quantile estimation vs. sort-everything.
 *
 * The paper adopts the Chen & Kelton histogram representation because
 * "recording and sorting the entire sample sequence to determine
 * quantiles imposes a large burden". This bench quantifies both sides of
 * that trade for several distributions: the memory footprint of the
 * histogram vs. the raw sample, and the relative error of the
 * interpolated p50/p95/p99 against the exact sorted quantiles, across
 * bin-count choices.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/random.hh"
#include "core/report.hh"
#include "distribution/basic.hh"
#include "distribution/fit.hh"
#include "distribution/heavy_tail.hh"
#include "stats/histogram.hh"

using namespace bighouse;

namespace {

double
exactQuantile(std::vector<double>& sorted, double q)
{
    const double idx = q * (static_cast<double>(sorted.size()) - 1.0);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace

int
main()
{
    constexpr std::size_t kSamples = 1'000'000;
    constexpr std::size_t kCalibration = 5000;
    std::printf("=== Ablation: histogram quantiles vs. exact sort ===\n");
    std::printf("%zu observations per distribution; bins fixed from a "
                "%zu-observation calibration prefix (the Fig. 2 "
                "protocol)\n\n",
                kSamples, kCalibration);

    struct Case
    {
        const char* name;
        DistPtr dist;
    };
    std::vector<Case> cases;
    cases.push_back({"Exponential(1)", std::make_unique<Exponential>(1.0)});
    cases.push_back({"HyperExp(cv=4)",
                     fitMeanCv(1.0, 4.0)});
    cases.push_back({"LogNormal(cv=2)", fitLogNormalMeanCv(1.0, 2.0)});
    cases.push_back({"BoundedPareto(1.5)",
                     std::make_unique<BoundedPareto>(1.5, 0.1, 1000.0)});

    TextTable table({"distribution", "bins", "p50 err %", "p95 err %",
                     "p99 err %", "hist KB", "raw sample KB"});
    for (const Case& testCase : cases) {
        Rng rng(0xAB1A7);
        std::vector<double> sample(kSamples);
        for (double& x : sample)
            x = testCase.dist->sample(rng);
        std::vector<double> calibration(sample.begin(),
                                        sample.begin() + kCalibration);
        std::vector<double> sorted = sample;
        std::sort(sorted.begin(), sorted.end());

        for (const std::size_t bins : {100u, 1000u, 10000u}) {
            Histogram hist(suggestBinScheme(calibration, bins));
            for (double x : sample)
                hist.add(x);
            std::vector<std::string> row{testCase.name,
                                         std::to_string(bins)};
            for (const double q : {0.50, 0.95, 0.99}) {
                const double exact = exactQuantile(sorted, q);
                const double approx = hist.quantile(q);
                row.push_back(
                    formatG(100.0 * std::abs(approx / exact - 1.0), 3));
            }
            row.push_back(formatG(
                static_cast<double>(bins * sizeof(std::uint64_t)) / 1024.0,
                4));
            row.push_back(formatG(
                static_cast<double>(kSamples * sizeof(double)) / 1024.0,
                5));
            table.addRow(std::move(row));
        }
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: 1000-10000 bins keep tail-quantile error well "
                "under the E = 5%% sampling accuracy while using ~3 "
                "orders of magnitude less memory than retaining the "
                "sample — and the histogram is mergeable across slaves, "
                "which a sorted sample is not (cheaply).\n");
    return 0;
}
