/**
 * @file
 * Ablation: how aggressively should an idle-state governor demote?
 *
 * The paper's canonical "extend the server model" example is ACPI power
 * modes. This bench sweeps the demotion-timeout scale of a three-state
 * ladder (C1/C6/S3-like) on a server at 30% utilization and reports
 * average power against mean and p95 latency — the energy/latency
 * frontier that any idle-state policy (including PowerNap and
 * DreamWeaver, which collapse it to one deep state) navigates.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "base/math_utils.hh"
#include "core/report.hh"
#include "distribution/fit.hh"
#include "power/acpi.hh"
#include "queueing/source.hh"
#include "sim/engine.hh"
#include "workload/workload.hh"

using namespace bighouse;

namespace {

constexpr unsigned kCores = 4;
constexpr double kUtilization = 0.3;
constexpr Time kHorizon = 500.0;

struct Point
{
    double averageWatts;
    double meanLatencyMs;
    double p95LatencyMs;
    std::vector<Time> residency;
};

Point
runWithTimeoutScale(double scale)
{
    AcpiLadder ladder = AcpiLadder::typicalServer();
    for (IdleState& state : ladder.states)
        state.entryTimeout *= scale;

    Engine sim;
    AcpiGovernor governor(sim, kCores, ladder);
    std::vector<double> latencies;
    governor.setCompletionHandler([&latencies](const Task& task) {
        latencies.push_back(task.responseTime());
    });

    Workload workload;
    workload.name = "interactive";
    workload.interarrival = fitMeanCv(0.01, 1.0);
    workload.service = fitMeanCv(0.01, 1.2);
    workload = scaledToLoad(workload, kCores, kUtilization);
    Source source(sim, governor, workload.interarrival->clone(),
                  workload.service->clone(), Rng(99));
    source.start();
    sim.runUntil(kHorizon);

    std::sort(latencies.begin(), latencies.end());
    Point point;
    point.averageWatts = governor.averageWatts();
    point.meanLatencyMs = sampleMean(latencies) * 1e3;
    point.p95LatencyMs =
        latencies[static_cast<std::size_t>(
            0.95 * static_cast<double>(latencies.size() - 1))]
        * 1e3;
    point.residency = governor.stateResidency();
    return point;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: ACPI idle-state demotion aggressiveness "
                "===\n");
    std::printf("%u-core server, interactive workload (10 ms tasks) at "
                "%.0f%% utilization; timeout scale 1.0 = C1 now / C6 at "
                "200us / S3 at 10ms\n\n",
                kCores, 100.0 * kUtilization);

    TextTable table({"timeout scale", "avg power (W)", "mean lat (ms)",
                     "p95 lat (ms)", "C1 s", "C6 s", "S3 s"});
    for (const double scale : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
        const Point point = runWithTimeoutScale(scale);
        table.addRow({formatG(scale, 4), formatG(point.averageWatts, 4),
                      formatG(point.meanLatencyMs, 4),
                      formatG(point.p95LatencyMs, 4),
                      formatG(point.residency[0], 3),
                      formatG(point.residency[1], 3),
                      formatG(point.residency[2], 3)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: aggressive demotion (small scale) pushes "
                "residency into the deep state and cuts average power "
                "toward the S3 floor, but every arrival then pays the "
                "1 ms deep wake — visible in mean and p95 latency. "
                "Conservative timeouts invert the trade. PowerNap and "
                "DreamWeaver are the two endpoints of this frontier with "
                "scheduling added on top.\n");
    return 0;
}
