/**
 * @file
 * Regenerates paper Fig. 5: the inter-arrival distribution has a large
 * effect on tail latency.
 *
 * Three arrival processes at the same mean rate drive the same Google
 * service distribution over QPS 65-80%:
 *   - "Low Cv"      near-uniform arrivals (Cv = 0.1), like load testers;
 *   - "Exponential" Poisson arrivals, the pen-and-paper assumption;
 *   - "Empirical"   the Table-1 google arrival process (Cv ~ 1.18,
 *                   heavier than exponential), materialized as an
 *                   empirical histogram the way BigHouse loads traces.
 * Reported: 95th-percentile latency normalized to the mean service time
 * (the paper's 1/mu normalization).
 */

#include <cstdio>
#include <vector>

#include "base/random.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "distribution/empirical.hh"
#include "distribution/fit.hh"
#include "workload/library.hh"

using namespace bighouse;

int
main()
{
    constexpr unsigned kCores = 4;
    const double serviceMean = table1Stats("google").serviceMean;

    std::printf("=== Fig. 5: inter-arrival distribution vs. tail latency "
                "===\n");
    std::printf("p95 latency (normalized to 1/mu = mean service time) "
                "vs. QPS; E = 2.5%%\n\n");

    // Build the three arrival models once, at the base rate; load scaling
    // adjusts the rate per point while preserving shape.
    Rng rng(0xF16'5);
    const Workload googleBase = makeWorkload("google");
    Workload empiricalBase = googleBase.clone();
    empiricalBase.interarrival = std::make_unique<EmpiricalDistribution>(
        EmpiricalDistribution::fromDistribution(*googleBase.interarrival,
                                                rng, 300000, 3000));

    struct Scenario
    {
        const char* name;
        Workload base;
    };
    std::vector<Scenario> scenarios;
    {
        Workload lowCv = googleBase.clone();
        lowCv.interarrival =
            fitMeanCv(googleBase.interarrival->mean(), 0.1);
        scenarios.push_back({"LowCv(0.1)", std::move(lowCv)});
        Workload expo = googleBase.clone();
        expo.interarrival =
            fitMeanCv(googleBase.interarrival->mean(), 1.0);
        scenarios.push_back({"Exponential", std::move(expo)});
        scenarios.push_back({"Empirical", std::move(empiricalBase)});
    }

    TextTable table({"QPS %", "LowCv(0.1)", "Exponential",
                     "Empirical(Cv~1.2)"});
    for (const double qps : {65.0, 70.0, 75.0, 80.0}) {
        std::vector<std::string> row{formatG(qps, 3)};
        for (const Scenario& scenario : scenarios) {
            ExperimentSpec spec;
            spec.workload =
                scaledToLoad(scenario.base, kCores, qps / 100.0);
            spec.coresPerServer = kCores;
            spec.sqs.accuracy = 0.025;
            const SqsResult result =
                Experiment(std::move(spec))
                    .run(5000 + static_cast<std::uint64_t>(qps));
            const double p95 = result.estimates[0].quantiles[0].value;
            row.push_back(formatG(p95 / serviceMean, 4));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper: low-Cv (load-tester) arrivals "
                "are consistently optimistic, and the heavier empirical "
                "process pulls away from the exponential assumption as "
                "load rises. The paper's hardware-measured gap is larger "
                "still, because live traffic also carries burst "
                "correlations that no i.i.d. redraw (theirs or ours) can "
                "represent — the Sec. 2.2 caveat.\n");
    return 0;
}
