/**
 * @file
 * Regenerates paper Fig. 10: parallel simulation speedup vs. number of
 * slaves, with the calibration-phase Amdahl bottleneck.
 *
 * The experiment mirrors the paper's: E = .01 (so the required sample is
 * "just under 40,000" at Cv ~ 1) and a 5000-observation calibration that
 * every slave must execute serially before it can contribute measurement
 * samples. Speedup therefore tracks the ideal line up to ~8 slaves and
 * flattens by 16.
 *
 * The paper measured wall-clock across 4 hosts. This container has one
 * core, so wall-clock speedup is not observable; instead the bench runs
 * the *real* threaded master/slave protocol (unique seeds, bin-scheme
 * broadcast, aggregate-size convergence, histogram merge — Fig. 3),
 * counts the events each phase executed, and reports the speedup model
 *    T(k) ~ masterCalibration + max_s (slaveCalibration_s + measure_s)
 * normalized by the serial run's event count. Estimate correctness is
 * checked against the serial run. See DESIGN.md substitution #3.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "parallel/parallel.hh"
#include "distribution/fit.hh"

using namespace bighouse;

namespace {

ExperimentSpec
cappingExperiment(double accuracy)
{
    // A quad-core capped server at 60% load with a Cv = 2 service
    // distribution: response times are autocorrelated enough that
    // calibration picks lags of 1-3 and the E=.01 sample is large and
    // *stable* across seeds (heavier tails make the required sample
    // itself a high-variance quantity, which would swamp the figure).
    ExperimentSpec spec;
    spec.workload.name = "capping-fig10";
    spec.workload.interarrival = fitMeanCv(1.0 / 2.4, 1.0);
    spec.workload.service = fitMeanCv(1.0, 2.0);
    spec.servers = 1;
    spec.coresPerServer = 4;
    PowerCappingSpec capping;
    capping.budgetFraction = 0.9;
    capping.dvfs = DvfsModel(ServerPowerSpec{150.0, 150.0, 5.0}, 0.9, 0.5);
    spec.capping = capping;  // the capping model runs; response converges
    spec.sqs.accuracy = accuracy;
    return spec;
}

} // namespace

int
main()
{
    constexpr double kAccuracy = 0.01;  // "we run the simulation with
                                        //  E = .01" (Sec. 4.2)
    std::printf("=== Fig. 10: parallel simulation speedup ===\n");
    std::printf("E = .01; every slave pays the 5000-observation "
                "calibration before contributing samples\n\n");

    // Serial reference run.
    const SqsResult serial =
        Experiment(cappingExperiment(kAccuracy)).run(1010);
    std::printf("serial reference: %s\n",
                summarizeRun(serial).c_str());
    std::printf("  required sample: %llu accepted observations; lag %zu "
                "(the paper's Cv~1 workload needed 'just under 40,000'; "
                "this Cv=2 service needs ~4x that per Eq. 2, which "
                "enlarges the parallelizable measurement phase)\n\n",
                static_cast<unsigned long long>(
                    serial.estimates[0].accepted),
                serial.estimates[0].lag);

    auto experiment =
        std::make_shared<Experiment>(cappingExperiment(kAccuracy));
    ModelBuilder builder = [experiment](SqsSimulation& sim) {
        experiment->buildInto(sim);
    };

    // All configurations share one root seed, so slave s draws the same
    // stream at every cluster size (the k=1 slave set is a prefix of the
    // k=16 set) and speedup is not confounded by per-seed lag choices.
    // T(k) is the critical path in events: master calibration (serial)
    // plus the slowest slave's calibration + measurement share; speedup
    // is T(1)/T(k), the paper's baseline.
    constexpr std::uint64_t kRootSeed = 2020;
    auto criticalEvents = [](const ParallelResult& result) {
        std::uint64_t slowest = 0;
        for (std::uint64_t events : result.slaveTotalEvents)
            slowest = std::max(slowest, events);
        return result.masterCalibrationEvents + slowest;
    };

    // Each point averages several root seeds: the runs-up test picks the
    // lag from a finite sample, so per-run event counts carry lag noise
    // the real deployment would also see; averaging recovers the trend.
    constexpr int kReplications = 5;
    TextTable table({"slaves", "speedup (SQS)", "ideal", "efficiency",
                     "avg T(k) events", "merged mean vs serial"});
    double baseline = 0.0;
    for (const std::size_t slaves : {1u, 2u, 4u, 8u, 16u}) {
        double criticalSum = 0.0;
        double ratioSum = 0.0;
        for (int rep = 0; rep < kReplications; ++rep) {
            ParallelConfig cfg;
            cfg.slaves = slaves;
            cfg.sqs.accuracy = kAccuracy;
            cfg.slaveBatchEvents = 5000;
            ParallelRunner runner(builder, cfg);
            const ParallelResult result =
                runner.run(kRootSeed + static_cast<std::uint64_t>(rep));
            criticalSum += static_cast<double>(criticalEvents(result));
            ratioSum +=
                result.estimates[0].mean / serial.estimates[0].mean;
        }
        const double critical = criticalSum / kReplications;
        if (slaves == 1)
            baseline = critical;
        const double speedup = baseline / critical;
        table.addRow({std::to_string(slaves), formatG(speedup, 4),
                      std::to_string(slaves),
                      formatG(speedup / static_cast<double>(slaves), 3),
                      formatG(critical, 6),
                      formatG(ratioSum / kReplications, 4)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("csv:\n%s\n", table.toCsv().c_str());
    std::printf("Shape check vs. the paper: near-ideal scaling through "
                "~8 slaves, then the per-slave warm-up + 5000-observation "
                "calibration (an Amdahl serial term) bends the curve flat "
                "by 16 slaves. Merged estimates agree with the serial run "
                "(ratio ~ 1 within E).\n");
    return 0;
}
