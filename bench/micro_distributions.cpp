/**
 * @file
 * Microbenchmarks (google-benchmark) for distribution sampling — every
 * simulated task costs at least two draws (gap + size), so draw rate
 * bounds end-to-end simulator throughput.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "base/random.hh"
#include "distribution/basic.hh"
#include "distribution/empirical.hh"
#include "distribution/fit.hh"
#include "distribution/heavy_tail.hh"
#include "distribution/phase_type.hh"

namespace {

using namespace bighouse;

void
sampleLoop(benchmark::State& state, const Distribution& dist)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
    state.SetItemsProcessed(state.iterations());
}

void
BM_RawUniform(benchmark::State& state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.uniform01());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawUniform);

void
BM_Exponential(benchmark::State& state)
{
    sampleLoop(state, Exponential(1.0));
}
BENCHMARK(BM_Exponential);

void
BM_LogNormal(benchmark::State& state)
{
    sampleLoop(state, LogNormal::fromMeanCv(1.0, 2.0));
}
BENCHMARK(BM_LogNormal);

void
BM_GammaShape05(benchmark::State& state)
{
    sampleLoop(state, Gamma(0.5, 1.0));
}
BENCHMARK(BM_GammaShape05);

void
BM_HyperExponential(benchmark::State& state)
{
    sampleLoop(state, HyperExponential::fromMeanCv(1.0, 4.0));
}
BENCHMARK(BM_HyperExponential);

void
BM_BoundedPareto(benchmark::State& state)
{
    sampleLoop(state, BoundedPareto(1.5, 0.1, 1000.0));
}
BENCHMARK(BM_BoundedPareto);

void
BM_Empirical(benchmark::State& state)
{
    // The BigHouse-native path: inverse transform over a histogram CDF.
    Rng build(7);
    const Exponential source(1.0);
    const auto empirical = EmpiricalDistribution::fromDistribution(
        source, build, 200000, static_cast<std::size_t>(state.range(0)));
    sampleLoop(state, empirical);
}
BENCHMARK(BM_Empirical)->Arg(100)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
