/**
 * @file
 * Ablation: load-balancing dispatch disciplines.
 *
 * Load balancing heads the paper's list of intended BigHouse studies
 * ("best suited for studies investigating load balancing, power
 * management, ..."). This bench runs the same cluster and workload under
 * Random, Round-Robin, Power-of-Two and Join-Shortest-Queue dispatch at
 * two loads and reports mean and p95 response time to convergence —
 * the classic ordering Random < RR < P2C < JSQ (better is lower), with
 * P2C capturing most of JSQ's benefit from two probes.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/report.hh"
#include "core/sqs.hh"
#include "datacenter/cluster.hh"
#include "distribution/basic.hh"
#include "distribution/fit.hh"
#include "queueing/source.hh"

using namespace bighouse;

namespace {

struct Outcome
{
    double meanMs;
    double p95Ms;
};

Outcome
runDispatch(Dispatch policy, double rho)
{
    SqsConfig config;
    config.accuracy = 0.03;
    SqsSimulation sim(config, 4242);
    const auto id = sim.addMetric("response_time");

    constexpr std::size_t kServers = 16;
    auto cluster = std::make_shared<Cluster>(
        sim.engine(), ClusterSpec{kServers, 1, policy},
        sim.rootRng().split());
    StatsCollection& stats = sim.stats();
    cluster->setCompletionHandler([&stats, id](const Task& task) {
        stats.record(id, task.responseTime());
    });
    // One central arrival stream feeding the balancer; 10 ms tasks with
    // Cv 1.5, aggregate load rho across the cluster.
    const double lambda = rho * static_cast<double>(kServers) / 0.010;
    auto source = std::make_shared<Source>(
        sim.engine(), cluster->intake(),
        std::make_unique<Exponential>(lambda), fitMeanCv(0.010, 1.5),
        sim.rootRng().split());
    source->start();
    sim.holdModel(cluster);
    sim.holdModel(source);

    const SqsResult result = sim.run();
    return Outcome{result.estimates[0].mean * 1e3,
                   result.estimates[0].quantiles[0].value * 1e3};
}

} // namespace

int
main()
{
    std::printf("=== Ablation: dispatch disciplines ===\n");
    std::printf("16 single-core servers behind one balancer, 10 ms tasks "
                "(Cv 1.5); mean / p95 response (ms)\n\n");

    const std::vector<std::pair<const char*, Dispatch>> policies = {
        {"Random", Dispatch::Random},
        {"RoundRobin", Dispatch::RoundRobin},
        {"PowerOfTwo", Dispatch::PowerOfTwo},
        {"JSQ", Dispatch::JoinShortestQueue},
    };
    TextTable table({"dispatch", "mean@50%", "p95@50%", "mean@85%",
                     "p95@85%"});
    for (const auto& [name, policy] : policies) {
        const Outcome low = runDispatch(policy, 0.5);
        const Outcome high = runDispatch(policy, 0.85);
        table.addRow({name, formatG(low.meanMs, 4), formatG(low.p95Ms, 4),
                      formatG(high.meanMs, 4), formatG(high.p95Ms, 4)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Reading: informed dispatch beats oblivious dispatch, and "
                "the gap explodes at high load; two random probes (P2C) "
                "recover most of full JSQ's benefit at O(1) probing cost "
                "— the standard power-of-two-choices result, here as a "
                "BigHouse load-balancing study.\n");
    return 0;
}
