/**
 * @file
 * Microbenchmarks (google-benchmark) for end-to-end DES throughput:
 * events/second of a running M/M/k station and of a power-capped
 * cluster — the numbers behind Fig. 7's wall-clock points.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "distribution/basic.hh"
#include "policy/power_capping.hh"
#include "queueing/server.hh"
#include "queueing/source.hh"
#include "sim/engine.hh"

namespace {

using namespace bighouse;

void
BM_Mmk(benchmark::State& state)
{
    const auto cores = static_cast<unsigned>(state.range(0));
    Engine sim;
    Server server(sim, cores);
    // 70% utilization regardless of core count.
    Source source(sim, server,
                  std::make_unique<Exponential>(0.7 * cores),
                  std::make_unique<Exponential>(1.0), Rng(1));
    source.start();
    std::uint64_t events = 0;
    for (auto _ : state)
        events += sim.run(10000);
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Mmk)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_CappedCluster(benchmark::State& state)
{
    const auto serverCount = static_cast<std::size_t>(state.range(0));
    Engine sim;
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<std::unique_ptr<Source>> sources;
    std::vector<Server*> pointers;
    Rng rng(2);
    for (std::size_t i = 0; i < serverCount; ++i) {
        servers.push_back(std::make_unique<Server>(sim, 4));
        sources.push_back(std::make_unique<Source>(
            sim, *servers.back(), std::make_unique<Exponential>(2.0),
            std::make_unique<Exponential>(1.0), rng.split(),
            static_cast<std::uint32_t>(i)));
        sources.back()->start();
        pointers.push_back(servers.back().get());
    }
    PowerCappingSpec spec;
    spec.budgetFraction = 0.6;
    spec.dvfs = DvfsModel(ServerPowerSpec{150.0, 150.0, 5.0}, 0.9, 0.5);
    PowerCappingCoordinator coordinator(sim, pointers, spec);
    coordinator.start();

    std::uint64_t events = 0;
    for (auto _ : state)
        events += sim.run(10000);
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CappedCluster)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
